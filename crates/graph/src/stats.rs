//! Subgraph statistics reproducing the columns of Table I and the degree
//! distributions of Figure 5.

use crate::graph::RelGraph;
use crate::range::ScoreRange;
use serde::{Deserialize, Serialize};

/// One row of Table I: statistics of a global subgraph at a score range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubgraphStats {
    /// Human-readable range label, e.g. `"[80, 90)"`.
    pub range: String,
    /// Share of all relationships whose score falls in the range (percent).
    pub pct_relationships: f64,
    /// Number of sensors with at least one edge in the subgraph.
    pub sensors: usize,
    /// Number of popular sensors (in-degree >= threshold).
    pub popular_sensors: usize,
    /// Edges remaining after removing popular sensors.
    pub relationships_without_popular: usize,
}

/// Computes one [`SubgraphStats`] row per score range (Table I).
///
/// `popular_threshold` is the in-degree cut-off; pass
/// [`RelGraph::scaled_popular_threshold`] to mirror the paper's
/// in-degree >= 100 at N = 128.
pub fn table_stats(
    g: &RelGraph,
    ranges: &[ScoreRange],
    popular_threshold: usize,
) -> Vec<SubgraphStats> {
    let total_edges = g.edge_count().max(1);
    ranges
        .iter()
        .map(|r| {
            let sub = g.subgraph(r);
            let popular = sub.popular(popular_threshold);
            let local = sub.without_nodes(&popular);
            SubgraphStats {
                range: r.to_string(),
                pct_relationships: 100.0 * sub.edge_count() as f64 / total_edges as f64,
                sensors: sub.active_nodes().len(),
                popular_sensors: popular.len(),
                relationships_without_popular: local.edge_count(),
            }
        })
        .collect()
}

/// In-degrees of all active nodes (for the CDF of Fig. 5a).
pub fn in_degrees(g: &RelGraph) -> Vec<usize> {
    g.active_nodes()
        .into_iter()
        .map(|i| g.in_degree(i))
        .collect()
}

/// Out-degrees of all active nodes (for the CDF of Fig. 5b).
pub fn out_degrees(g: &RelGraph) -> Vec<usize> {
    g.active_nodes()
        .into_iter()
        .map(|i| g.out_degree(i))
        .collect()
}

/// Empirical CDF over integer observations: returns `(value, fraction <= value)`
/// pairs at each distinct value, suitable for plotting.
pub fn ecdf(values: &[usize]) -> Vec<(usize, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out: Vec<(usize, f64)> = Vec::new();
    for (i, v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *v => last.1 = frac,
            _ => out.push((*v, frac)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> RelGraph {
        let names: Vec<String> = (0..5).map(|i| format!("s{i}")).collect();
        let mut g = RelGraph::new(names);
        g.set_score(0, 1, 85.0);
        g.set_score(1, 0, 85.0);
        g.set_score(2, 0, 85.0);
        g.set_score(3, 0, 85.0);
        g.set_score(0, 2, 95.0);
        g.set_score(3, 4, 55.0);
        g
    }

    #[test]
    fn table_rows_match_manual_counts() {
        let ranges = ScoreRange::paper_buckets();
        let rows = table_stats(&graph(), &ranges, 3);
        // [80,90): 4 edges, sensors {0,1,2,3}, popular = {0} (in-degree 3),
        // removing 0 leaves no edges.
        let row = &rows[3];
        assert_eq!(row.range, "[80, 90)");
        assert!((row.pct_relationships - 100.0 * 4.0 / 6.0).abs() < 1e-9);
        assert_eq!(row.sensors, 4);
        assert_eq!(row.popular_sensors, 1);
        assert_eq!(row.relationships_without_popular, 0);
        // [90,100]: single edge 0->2.
        assert_eq!(rows[4].sensors, 2);
        assert_eq!(rows[4].popular_sensors, 0);
        assert_eq!(rows[4].relationships_without_popular, 1);
    }

    #[test]
    fn percentages_sum_to_100() {
        let rows = table_stats(&graph(), &ScoreRange::paper_buckets(), 3);
        let total: f64 = rows.iter().map(|r| r.pct_relationships).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degree_vectors() {
        let g = graph();
        let ins = in_degrees(&g);
        let outs = out_degrees(&g);
        assert_eq!(ins.len(), outs.len());
        assert_eq!(ins.iter().sum::<usize>(), g.edge_count());
        assert_eq!(outs.iter().sum::<usize>(), g.edge_count());
    }

    #[test]
    fn ecdf_properties() {
        let cdf = ecdf(&[3, 1, 3, 2]);
        assert_eq!(cdf, vec![(1, 0.25), (2, 0.5), (3, 1.0)]);
        assert!(ecdf(&[]).is_empty());
    }
}
