//! BLEU score ranges used to partition the relationship graph.

use serde::{Content, DeError, Deserialize, Serialize};

/// Why a pair of bounds does not form a valid [`ScoreRange`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RangeError {
    /// A bound is NaN or infinite; BLEU scores live in `[0, 100]`.
    NonFiniteBound {
        /// The offered lower bound.
        lo: f64,
        /// The offered upper bound.
        hi: f64,
    },
    /// `lo > hi`.
    Inverted {
        /// The offered lower bound.
        lo: f64,
        /// The offered upper bound.
        hi: f64,
    },
}

impl std::fmt::Display for RangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangeError::NonFiniteBound { lo, hi } => write!(
                f,
                "score range bounds must be finite, got lo = {lo}, hi = {hi}"
            ),
            RangeError::Inverted { lo, hi } => {
                write!(f, "inverted score range: lo {lo} > hi {hi}")
            }
        }
    }
}

impl std::error::Error for RangeError {}

/// An interval of BLEU scores, half-open `[lo, hi)` by default with an
/// optional inclusive upper bound (the paper's top bucket is `[90, 100]`).
///
/// Fields are private and every way in validates — the constructors here
/// and the hand-written `Deserialize` impl — so a held `ScoreRange` always
/// has finite, ordered bounds. (The derived impl used to bypass the
/// constructor checks, letting `{"lo": 90, "hi": 80}` or NaN bounds in from
/// disk; such JSON now fails to deserialize instead.)
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ScoreRange {
    lo: f64,
    hi: f64,
    inclusive_hi: bool,
}

impl ScoreRange {
    /// Half-open range `[lo, hi)`; fallible form of
    /// [`half_open`](Self::half_open).
    ///
    /// # Errors
    ///
    /// [`RangeError::NonFiniteBound`] when a bound is NaN or infinite,
    /// [`RangeError::Inverted`] when `lo > hi`.
    pub fn try_half_open(lo: f64, hi: f64) -> Result<Self, RangeError> {
        Self::validated(lo, hi, false)
    }

    /// Closed range `[lo, hi]`; fallible form of [`closed`](Self::closed).
    ///
    /// # Errors
    ///
    /// As [`try_half_open`](Self::try_half_open).
    pub fn try_closed(lo: f64, hi: f64) -> Result<Self, RangeError> {
        Self::validated(lo, hi, true)
    }

    fn validated(lo: f64, hi: f64, inclusive_hi: bool) -> Result<Self, RangeError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(RangeError::NonFiniteBound { lo, hi });
        }
        if lo > hi {
            return Err(RangeError::Inverted { lo, hi });
        }
        Ok(Self {
            lo,
            hi,
            inclusive_hi,
        })
    }

    /// Half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN or infinite.
    pub fn half_open(lo: f64, hi: f64) -> Self {
        match Self::try_half_open(lo, hi) {
            Ok(r) => r,
            Err(e) => panic!("invalid score range [{lo}, {hi}): {e}"),
        }
    }

    /// Closed range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN or infinite.
    pub fn closed(lo: f64, hi: f64) -> Self {
        match Self::try_closed(lo, hi) {
            Ok(r) => r,
            Err(e) => panic!("invalid score range [{lo}, {hi}]: {e}"),
        }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether `score` falls inside the range.
    pub fn contains(&self, score: f64) -> bool {
        if self.inclusive_hi {
            score >= self.lo && score <= self.hi
        } else {
            score >= self.lo && score < self.hi
        }
    }

    /// The paper's five global-subgraph buckets:
    /// `[0,60) [60,70) [70,80) [80,90) [90,100]` (Table I).
    pub fn paper_buckets() -> Vec<ScoreRange> {
        vec![
            ScoreRange::half_open(0.0, 60.0),
            ScoreRange::half_open(60.0, 70.0),
            ScoreRange::half_open(70.0, 80.0),
            ScoreRange::half_open(80.0, 90.0),
            ScoreRange::closed(90.0, 100.0),
        ]
    }

    /// The `[80, 90)` bucket the paper finds best for anomaly detection.
    pub fn best_detection() -> ScoreRange {
        ScoreRange::half_open(80.0, 90.0)
    }
}

impl Deserialize for ScoreRange {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let lo: f64 = serde::__field(content, "lo")?;
        let hi: f64 = serde::__field(content, "hi")?;
        let inclusive_hi: bool = serde::__field(content, "inclusive_hi")?;
        Self::validated(lo, hi, inclusive_hi).map_err(|e| DeError::custom(e.to_string()))
    }
}

impl std::fmt::Display for ScoreRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let close = if self.inclusive_hi { ']' } else { ')' };
        write!(f, "[{:.0}, {:.0}{close}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_excludes_upper() {
        let r = ScoreRange::half_open(80.0, 90.0);
        assert!(r.contains(80.0));
        assert!(r.contains(89.999));
        assert!(!r.contains(90.0));
        assert!(!r.contains(79.999));
    }

    #[test]
    fn closed_includes_upper() {
        let r = ScoreRange::closed(90.0, 100.0);
        assert!(r.contains(100.0));
        assert!(r.contains(90.0));
    }

    #[test]
    fn paper_buckets_partition_0_to_100() {
        let buckets = ScoreRange::paper_buckets();
        assert_eq!(buckets.len(), 5);
        for score in [0.0, 12.5, 59.9, 60.0, 69.9, 70.0, 80.0, 89.9, 90.0, 100.0] {
            let hits = buckets.iter().filter(|b| b.contains(score)).count();
            assert_eq!(hits, 1, "score {score} in {hits} buckets");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ScoreRange::half_open(80.0, 90.0).to_string(), "[80, 90)");
        assert_eq!(ScoreRange::closed(90.0, 100.0).to_string(), "[90, 100]");
    }

    #[test]
    #[should_panic(expected = "inverted score range")]
    fn inverted_range_panics() {
        let _ = ScoreRange::half_open(90.0, 80.0);
    }

    #[test]
    #[should_panic(expected = "bounds must be finite")]
    fn nan_bound_panics_with_clear_message() {
        let _ = ScoreRange::closed(f64::NAN, 100.0);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(
            ScoreRange::try_half_open(90.0, 80.0),
            Err(RangeError::Inverted { lo: 90.0, hi: 80.0 })
        );
        assert!(matches!(
            ScoreRange::try_closed(0.0, f64::INFINITY),
            Err(RangeError::NonFiniteBound { .. })
        ));
        assert!(matches!(
            ScoreRange::try_closed(f64::NAN, f64::NAN),
            Err(RangeError::NonFiniteBound { .. })
        ));
        assert!(ScoreRange::try_closed(0.0, 0.0).is_ok(), "empty-ish ok");
    }

    #[test]
    fn deserialize_validates_bounds() {
        // Inverted bounds arriving from JSON must be rejected, not admitted.
        let err = serde_json::from_str::<ScoreRange>(
            r#"{"lo": 90.0, "hi": 80.0, "inclusive_hi": false}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("inverted score range"), "{err}");

        // JSON itself cannot spell NaN, but a hand-built Content tree (or a
        // future non-JSON codec) can; the impl must still reject it.
        let content = Content::Map(vec![
            ("lo".to_owned(), Content::F64(f64::NAN)),
            ("hi".to_owned(), Content::F64(100.0)),
            ("inclusive_hi".to_owned(), Content::Bool(true)),
        ]);
        let err = ScoreRange::from_content(&content).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");

        // Valid JSON still round-trips exactly.
        let r = ScoreRange::half_open(80.0, 90.0);
        let back: ScoreRange = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
