//! BLEU score ranges used to partition the relationship graph.

use serde::{Deserialize, Serialize};

/// An interval of BLEU scores, half-open `[lo, hi)` by default with an
/// optional inclusive upper bound (the paper's top bucket is `[90, 100]`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoreRange {
    lo: f64,
    hi: f64,
    inclusive_hi: bool,
}

impl ScoreRange {
    /// Half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn half_open(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid score range [{lo}, {hi})");
        Self {
            lo,
            hi,
            inclusive_hi: false,
        }
    }

    /// Closed range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid score range [{lo}, {hi}]");
        Self {
            lo,
            hi,
            inclusive_hi: true,
        }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether `score` falls inside the range.
    pub fn contains(&self, score: f64) -> bool {
        if self.inclusive_hi {
            score >= self.lo && score <= self.hi
        } else {
            score >= self.lo && score < self.hi
        }
    }

    /// The paper's five global-subgraph buckets:
    /// `[0,60) [60,70) [70,80) [80,90) [90,100]` (Table I).
    pub fn paper_buckets() -> Vec<ScoreRange> {
        vec![
            ScoreRange::half_open(0.0, 60.0),
            ScoreRange::half_open(60.0, 70.0),
            ScoreRange::half_open(70.0, 80.0),
            ScoreRange::half_open(80.0, 90.0),
            ScoreRange::closed(90.0, 100.0),
        ]
    }

    /// The `[80, 90)` bucket the paper finds best for anomaly detection.
    pub fn best_detection() -> ScoreRange {
        ScoreRange::half_open(80.0, 90.0)
    }
}

impl std::fmt::Display for ScoreRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let close = if self.inclusive_hi { ']' } else { ')' };
        write!(f, "[{:.0}, {:.0}{close}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_excludes_upper() {
        let r = ScoreRange::half_open(80.0, 90.0);
        assert!(r.contains(80.0));
        assert!(r.contains(89.999));
        assert!(!r.contains(90.0));
        assert!(!r.contains(79.999));
    }

    #[test]
    fn closed_includes_upper() {
        let r = ScoreRange::closed(90.0, 100.0);
        assert!(r.contains(100.0));
        assert!(r.contains(90.0));
    }

    #[test]
    fn paper_buckets_partition_0_to_100() {
        let buckets = ScoreRange::paper_buckets();
        assert_eq!(buckets.len(), 5);
        for score in [0.0, 12.5, 59.9, 60.0, 69.9, 70.0, 80.0, 89.9, 90.0, 100.0] {
            let hits = buckets.iter().filter(|b| b.contains(score)).count();
            assert_eq!(hits, 1, "score {score} in {hits} buckets");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ScoreRange::half_open(80.0, 90.0).to_string(), "[80, 90)");
        assert_eq!(ScoreRange::closed(90.0, 100.0).to_string(), "[90, 100]");
    }

    #[test]
    #[should_panic(expected = "invalid score range")]
    fn inverted_range_panics() {
        let _ = ScoreRange::half_open(90.0, 80.0);
    }
}
