//! Gated Recurrent Unit layers (Cho et al., 2014) on the autodiff [`Tape`].
//!
//! Provided as an alternative recurrent cell for the seq2seq model
//! ([`crate::seq2seq::CellKind`]): GRUs use ~25 % fewer parameters than
//! LSTMs, which matters when thousands of pair models are trained.

use crate::matrix::Matrix;
use crate::tape::{ParamSet, Tape, TensorId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameter slots of a single GRU layer. Gate weights are laid out as
/// `[r | z]` (reset, update) along the columns, with a separate candidate
/// block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruLayer {
    /// Input weights for reset and update gates (`input x 2H`).
    wx_gates: usize,
    /// Hidden weights for reset and update gates (`H x 2H`).
    wh_gates: usize,
    /// Gate bias (`1 x 2H`).
    b_gates: usize,
    /// Input weights for the candidate state (`input x H`).
    wx_cand: usize,
    /// Hidden weights for the candidate state (`H x H`).
    wh_cand: usize,
    /// Candidate bias (`1 x H`).
    b_cand: usize,
    input: usize,
    hidden: usize,
}

/// Tape-bound handles to a [`GruLayer`]'s parameters.
///
/// Binding pre-concatenates each weight pair (`[wx_gates; wh_gates]` and
/// `[wx_cand; wh_cand]`) so [`BoundGru::step`] issues one GEMM per block
/// instead of two; gradients flow back through the concatenation to the
/// original parameter slots.
#[derive(Clone, Copy, Debug)]
pub struct BoundGru {
    /// Packed `[wx_gates; wh_gates]`, the fused gate GEMM operand.
    w_gates: TensorId,
    /// Packed `[wx_cand; wh_cand]`, the fused candidate GEMM operand.
    w_cand: TensorId,
    wx_gates: TensorId,
    wh_gates: TensorId,
    b_gates: TensorId,
    wx_cand: TensorId,
    wh_cand: TensorId,
    b_cand: TensorId,
    hidden: usize,
}

impl GruLayer {
    /// Allocates parameters for a layer mapping `input` features to `hidden`
    /// units.
    pub fn new(params: &mut ParamSet, input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            wx_gates: params.add(Matrix::xavier(input, 2 * hidden, rng)),
            wh_gates: params.add(Matrix::xavier(hidden, 2 * hidden, rng)),
            b_gates: params.add(Matrix::zeros(1, 2 * hidden)),
            wx_cand: params.add(Matrix::xavier(input, hidden, rng)),
            wh_cand: params.add(Matrix::xavier(hidden, hidden, rng)),
            b_cand: params.add(Matrix::zeros(1, hidden)),
            input,
            hidden,
        }
    }

    /// Input feature count.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Hidden unit count.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Binds the layer parameters onto `tape` (once per forward pass),
    /// packing the input/hidden weight pairs into fused GEMM operands.
    pub fn bind(&self, tape: &mut Tape, params: &ParamSet) -> BoundGru {
        let wx_gates = tape.param(params, self.wx_gates);
        let wh_gates = tape.param(params, self.wh_gates);
        let wx_cand = tape.param(params, self.wx_cand);
        let wh_cand = tape.param(params, self.wh_cand);
        BoundGru {
            w_gates: tape.concat_rows(wx_gates, wh_gates),
            w_cand: tape.concat_rows(wx_cand, wh_cand),
            wx_gates,
            wh_gates,
            b_gates: tape.param(params, self.b_gates),
            wx_cand,
            wh_cand,
            b_cand: tape.param(params, self.b_cand),
            hidden: self.hidden,
        }
    }

    /// Zero initial hidden state for a batch of `batch` rows.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> TensorId {
        tape.leaf(Matrix::zeros(batch, self.hidden))
    }

    /// Packs the layer weights for the tape-free inference engine: the same
    /// fused gate/candidate operands [`GruLayer::bind`] builds on a tape,
    /// copied out of `params` once instead of per forward pass.
    pub fn pack_infer(&self, params: &ParamSet) -> crate::infer::PackedCell {
        crate::infer::PackedCell::Gru {
            w_gates: crate::QMatrix::F32(crate::infer::pack_rows(
                params.value(self.wx_gates),
                params.value(self.wh_gates),
            )),
            b_gates: params.value(self.b_gates).clone(),
            w_cand: crate::QMatrix::F32(crate::infer::pack_rows(
                params.value(self.wx_cand),
                params.value(self.wh_cand),
            )),
            b_cand: params.value(self.b_cand).clone(),
            hidden: self.hidden,
        }
    }
}

impl BoundGru {
    /// Advances the recurrence one step:
    ///
    /// ```text
    /// r = sigmoid(x Wxr + h Whr + br)      (reset gate)
    /// z = sigmoid(x Wxz + h Whz + bz)      (update gate)
    /// c = tanh(x Wxc + (r ⊙ h) Whc + bc)   (candidate)
    /// h' = z ⊙ h + (1 - z) ⊙ c
    /// ```
    /// Uses the fused path: one GEMM of `[x | h]` against `[wx; wh]` per
    /// block. Results can differ from [`BoundGru::step_unfused`] by
    /// floating-point rounding only.
    pub fn step(&self, tape: &mut Tape, x: TensorId, h: TensorId) -> TensorId {
        let hd = self.hidden;
        let xh = tape.concat_cols(x, h);
        let g = tape.matmul(xh, self.w_gates);
        let g = tape.add_row(g, self.b_gates);
        let r_pre = tape.slice_cols(g, 0, hd);
        let z_pre = tape.slice_cols(g, hd, hd);
        let r = tape.sigmoid(r_pre);
        let z = tape.sigmoid(z_pre);

        let rh = tape.hadamard(r, h);
        let xrh = tape.concat_cols(x, rh);
        let c = tape.matmul(xrh, self.w_cand);
        let c = tape.add_row(c, self.b_cand);
        let c = tape.tanh(c);

        self.combine(tape, h, z, c)
    }

    /// The original two-GEMM-per-block step, kept as the oracle for the fused
    /// path's parity tests and benches.
    pub fn step_unfused(&self, tape: &mut Tape, x: TensorId, h: TensorId) -> TensorId {
        let hd = self.hidden;
        let gx = tape.matmul(x, self.wx_gates);
        let gh = tape.matmul(h, self.wh_gates);
        let g = tape.add(gx, gh);
        let g = tape.add_row(g, self.b_gates);
        let r_pre = tape.slice_cols(g, 0, hd);
        let z_pre = tape.slice_cols(g, hd, hd);
        let r = tape.sigmoid(r_pre);
        let z = tape.sigmoid(z_pre);

        let rh = tape.hadamard(r, h);
        let cx = tape.matmul(x, self.wx_cand);
        let ch = tape.matmul(rh, self.wh_cand);
        let c = tape.add(cx, ch);
        let c = tape.add_row(c, self.b_cand);
        let c = tape.tanh(c);

        self.combine(tape, h, z, c)
    }

    /// `h' = z ⊙ h + (1 - z) ⊙ c = z ⊙ (h - c) + c`, shared by both variants.
    fn combine(&self, tape: &mut Tape, h: TensorId, z: TensorId, c: TensorId) -> TensorId {
        let h_minus_c = {
            let neg_c = tape.scale(c, -1.0);
            tape.add(h, neg_c)
        };
        let gated = tape.hadamard(z, h_minus_c);
        tape.add(gated, c)
    }
}

/// A stack of GRU layers; layer `l + 1` consumes layer `l`'s hidden states.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruStack {
    layers: Vec<GruLayer>,
}

/// Tape-bound handles for a [`GruStack`].
#[derive(Clone, Debug)]
pub struct BoundGruStack {
    layers: Vec<BoundGru>,
}

impl GruStack {
    /// Allocates `n_layers` layers, the first consuming `input` features.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0`.
    pub fn new(
        params: &mut ParamSet,
        input: usize,
        hidden: usize,
        n_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_layers > 0, "GruStack requires at least one layer");
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let in_dim = if l == 0 { input } else { hidden };
            layers.push(GruLayer::new(params, in_dim, hidden, rng));
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty (never true for a constructed stack).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Binds all layers onto `tape`.
    pub fn bind(&self, tape: &mut Tape, params: &ParamSet) -> BoundGruStack {
        BoundGruStack {
            layers: self.layers.iter().map(|l| l.bind(tape, params)).collect(),
        }
    }

    /// Zero hidden state for every layer.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> Vec<TensorId> {
        self.layers
            .iter()
            .map(|l| l.zero_state(tape, batch))
            .collect()
    }

    /// Packs every layer for the tape-free inference engine, bottom first.
    pub fn pack_infer(&self, params: &ParamSet) -> Vec<crate::infer::PackedCell> {
        self.layers.iter().map(|l| l.pack_infer(params)).collect()
    }
}

impl BoundGruStack {
    /// Advances every layer one step, returning the new per-layer hidden
    /// states; the top layer's output is the stack output.
    pub fn step(&self, tape: &mut Tape, x: TensorId, states: &[TensorId]) -> Vec<TensorId> {
        debug_assert_eq!(states.len(), self.layers.len());
        let mut out = Vec::with_capacity(self.layers.len());
        let mut input = x;
        for (l, layer) in self.layers.iter().enumerate() {
            let next = layer.step(tape, input, states[l]);
            input = next;
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gru_step_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamSet::new();
        let layer = GruLayer::new(&mut params, 3, 5, &mut rng);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let h = layer.zero_state(&mut tape, 2);
        let x = tape.leaf(Matrix::uniform(2, 3, 1.0, &mut rng));
        let h2 = bound.step(&mut tape, x, h);
        assert_eq!(tape.value(h2).shape(), (2, 5));
    }

    #[test]
    fn gru_hidden_values_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamSet::new();
        let layer = GruLayer::new(&mut params, 2, 3, &mut rng);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let mut h = layer.zero_state(&mut tape, 1);
        for _ in 0..40 {
            let x = tape.leaf(Matrix::uniform(1, 2, 10.0, &mut rng));
            h = bound.step(&mut tape, x, h);
        }
        // h is a convex combination of tanh outputs, so stays in (-1, 1).
        for &v in tape.value(h).data() {
            assert!(v.abs() < 1.0);
        }
    }

    #[test]
    fn gru_gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let layer = GruLayer::new(&mut params, 2, 3, &mut rng);
        let out_w = params.add(Matrix::xavier(3, 2, &mut rng));
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let w = tape.param(&params, out_w);
        let mut h = layer.zero_state(&mut tape, 1);
        for _ in 0..4 {
            let x = tape.leaf(Matrix::uniform(1, 2, 1.0, &mut rng));
            h = bound.step(&mut tape, x, h);
        }
        let logits = tape.matmul(h, w);
        let loss = tape.cross_entropy(logits, &[1]);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, &mut params);
        for p in 0..6 {
            assert!(params.grad(p).norm_sq() > 0.0, "param {p} has zero grad");
        }
    }

    #[test]
    fn gru_uses_fewer_parameters_than_lstm() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gru_params = ParamSet::new();
        let _ = GruLayer::new(&mut gru_params, 16, 16, &mut rng);
        let gru_count: usize = (0..gru_params.len())
            .map(|i| gru_params.value(i).data().len())
            .sum();
        let mut lstm_params = ParamSet::new();
        let _ = crate::lstm::LstmLayer::new(&mut lstm_params, 16, 16, &mut rng);
        let lstm_count: usize = (0..lstm_params.len())
            .map(|i| lstm_params.value(i).data().len())
            .sum();
        assert!(
            gru_count < lstm_count,
            "gru {gru_count} vs lstm {lstm_count}"
        );
    }

    #[test]
    fn stack_runs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let stack = GruStack::new(&mut params, 4, 6, 2, &mut rng);
        assert_eq!(stack.len(), 2);
        let mut tape = Tape::new();
        let bound = stack.bind(&mut tape, &params);
        let states = stack.zero_state(&mut tape, 3);
        let x = tape.leaf(Matrix::uniform(3, 4, 1.0, &mut rng));
        let next = bound.step(&mut tape, x, &states);
        assert_eq!(next.len(), 2);
        assert_eq!(tape.value(next[1]).shape(), (3, 6));
    }

    /// Finite-difference check of the full GRU step.
    #[test]
    fn gru_gradcheck() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = ParamSet::new();
        let layer = GruLayer::new(&mut params, 2, 3, &mut rng);
        let x_val = Matrix::uniform(2, 2, 0.5, &mut rng);
        let forward = |tape: &mut Tape, params: &ParamSet| {
            let bound = layer.bind(tape, params);
            let h = layer.zero_state(tape, 2);
            let x = tape.leaf(x_val.clone());
            let h1 = bound.step(tape, x, h);
            let x2 = tape.leaf(x_val.clone());
            let h2 = bound.step(tape, x2, h1);
            tape.cross_entropy(h2, &[0, 2])
        };
        let mut tape = Tape::new();
        let loss = forward(&mut tape, &params);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, &mut params);

        let eps = 1e-2f32;
        for p in 0..params.len() {
            let (rows, cols) = params.value(p).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = params.value(p).get(r, c);
                    params.value_mut(p).set(r, c, orig + eps);
                    let mut t1 = Tape::new();
                    let l1 = forward(&mut t1, &params);
                    let up = t1.value(l1).get(0, 0);
                    params.value_mut(p).set(r, c, orig - eps);
                    let mut t2 = Tape::new();
                    let l2 = forward(&mut t2, &params);
                    let down = t2.value(l2).get(0, 0);
                    params.value_mut(p).set(r, c, orig);
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = params.grad(p).get(r, c);
                    let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                    assert!(
                        (numeric - analytic).abs() / denom < 5e-2,
                        "param {p} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }
}
