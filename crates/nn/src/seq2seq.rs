//! Sequence-to-sequence encoder–decoder with Luong global attention.
//!
//! This is the neural machine translation model of the paper (Luong, Pham &
//! Manning, 2015): a recurrent encoder maps the source sentence to a
//! sequence of hidden states; a recurrent decoder, initialized from the
//! encoder's final state, attends over those states and produces one target
//! token per step. Training uses teacher forcing and Adam; inference is
//! greedy by default with optional beam search
//! ([`Seq2Seq::translate_beam`]).
//!
//! Configurable axes (all from Luong et al.):
//!
//! * [`CellKind`] — LSTM (the paper's cell) or GRU (fewer parameters);
//! * [`AttentionKind`] — `dot` or `general` (bilinear) score functions.
//!
//! Sentences produced by the language pipeline are fixed-length by
//! construction, so no padding or EOS machinery is needed: the decoder
//! always emits exactly as many tokens as the reference sentence.

use crate::error::NnError;
use crate::gru::{BoundGruStack, GruStack};
use crate::infer::{InferCache, InferCtx, InferState, ModelSpec, PackedCell};
use crate::lstm::{BoundStack, LstmStack, LstmState};
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::tape::{ParamSet, Tape, TensorId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Recurrent cell family used by encoder and decoder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    /// Long Short-Term Memory (the paper's choice).
    #[default]
    Lstm,
    /// Gated Recurrent Unit (≈25 % fewer parameters).
    Gru,
}

/// Luong attention score function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionKind {
    /// `score(h_t, h_s) = h_t · h_s`.
    #[default]
    Dot,
    /// `score(h_t, h_s) = h_t W_a · h_s` (bilinear).
    General,
}

/// Hyper-parameters of a [`Seq2Seq`] model.
///
/// The paper (§III-A2) uses 2 LSTM layers with 64 hidden units, 64-dim
/// embeddings, 1000 training steps and dropout 0.2; the defaults here are
/// scaled down for single-core CPU training but are directly comparable
/// because every sensor pair shares one configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Seq2SeqConfig {
    /// Token embedding dimension.
    pub embed_dim: usize,
    /// Hidden units per recurrent layer.
    pub hidden: usize,
    /// Number of stacked recurrent layers in encoder and decoder.
    pub layers: usize,
    /// Recurrent cell family.
    pub cell: CellKind,
    /// Attention score function.
    pub attention: AttentionKind,
    /// Luong *input feeding*: concatenate the previous attentional hidden
    /// state to the decoder input so alignment decisions are remembered
    /// across steps (Luong et al., §3.3).
    pub input_feeding: bool,
    /// Dropout probability applied to embeddings, between stacked LSTM
    /// layers and before the output projection (training only).
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of mini-batch updates performed by [`Seq2Seq::fit`].
    pub train_steps: usize,
    /// Mini-batch size (sampled with replacement).
    pub batch_size: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// RNG seed for initialization, batching and dropout.
    pub seed: u64,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Self {
            embed_dim: 32,
            hidden: 32,
            layers: 1,
            cell: CellKind::Lstm,
            attention: AttentionKind::Dot,
            input_feeding: false,
            dropout: 0.2,
            learning_rate: 0.01,
            train_steps: 80,
            batch_size: 8,
            grad_clip: 5.0,
            seed: 17,
        }
    }
}

/// Encoder or decoder recurrence of either cell family.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Recurrent {
    Lstm(LstmStack),
    Gru(GruStack),
}

enum BoundRecurrent {
    Lstm(BoundStack),
    Gru(BoundGruStack),
}

/// Per-layer recurrent state of either family, cheap to clone (ids only).
#[derive(Clone, Debug)]
enum RecState {
    Lstm(Vec<LstmState>),
    Gru(Vec<TensorId>),
}

impl Recurrent {
    fn new(
        cell: CellKind,
        params: &mut ParamSet,
        input: usize,
        hidden: usize,
        layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        match cell {
            CellKind::Lstm => Recurrent::Lstm(LstmStack::new(params, input, hidden, layers, rng)),
            CellKind::Gru => Recurrent::Gru(GruStack::new(params, input, hidden, layers, rng)),
        }
    }

    fn bind(&self, tape: &mut Tape, params: &ParamSet) -> BoundRecurrent {
        match self {
            Recurrent::Lstm(s) => BoundRecurrent::Lstm(s.bind(tape, params)),
            Recurrent::Gru(s) => BoundRecurrent::Gru(s.bind(tape, params)),
        }
    }

    fn pack_infer(&self, params: &ParamSet) -> Vec<PackedCell> {
        match self {
            Recurrent::Lstm(s) => s.pack_infer(params),
            Recurrent::Gru(s) => s.pack_infer(params),
        }
    }

    fn zero_state(&self, tape: &mut Tape, batch: usize) -> RecState {
        match self {
            Recurrent::Lstm(s) => RecState::Lstm(s.zero_state(tape, batch)),
            Recurrent::Gru(s) => RecState::Gru(s.zero_state(tape, batch)),
        }
    }
}

impl BoundRecurrent {
    /// Advances one step; dropout (LSTM inter-layer only) applies when an
    /// rng is supplied.
    fn step(
        &self,
        tape: &mut Tape,
        x: TensorId,
        state: &RecState,
        dropout: f32,
        rng: Option<&mut StdRng>,
    ) -> RecState {
        match (self, state) {
            (BoundRecurrent::Lstm(s), RecState::Lstm(states)) => match rng {
                Some(r) => {
                    let mut sampler = || r.gen::<f32>();
                    RecState::Lstm(s.step(tape, x, states, Some((dropout, &mut sampler))))
                }
                None => RecState::Lstm(s.step(tape, x, states, None)),
            },
            (BoundRecurrent::Gru(s), RecState::Gru(states)) => {
                RecState::Gru(s.step(tape, x, states))
            }
            _ => unreachable!("state family always matches the recurrence family"),
        }
    }
}

impl RecState {
    /// Top layer's hidden output.
    fn top_h(&self) -> TensorId {
        match self {
            RecState::Lstm(states) => states.last().expect("non-empty stack").h,
            RecState::Gru(states) => *states.last().expect("non-empty stack"),
        }
    }
}

/// Encoder–decoder recurrent model with Luong attention. See the
/// [module documentation](self).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Seq2Seq {
    cfg: Seq2SeqConfig,
    params: ParamSet,
    optimizer: Adam,
    src_vocab: usize,
    tgt_vocab: usize,
    bos: usize,
    src_emb: usize,
    tgt_emb: usize,
    encoder: Recurrent,
    decoder: Recurrent,
    /// Bilinear attention weight (`General` attention only).
    w_a: Option<usize>,
    w_c: usize,
    b_c: usize,
    w_out: usize,
    b_out: usize,
    /// Cached tape-free inference context; rebuilt lazily after training,
    /// cloning, or deserialization (see [`InferCache`]).
    #[serde(skip)]
    infer: InferCache,
}

/// Tape-bound parameter handles, valid for one forward pass.
struct Bound {
    src_emb: TensorId,
    tgt_emb: TensorId,
    enc: BoundRecurrent,
    dec: BoundRecurrent,
    w_a: Option<TensorId>,
    w_c: TensorId,
    b_c: TensorId,
    w_out: TensorId,
    b_out: TensorId,
}

impl Seq2Seq {
    /// Creates a model translating from a `src_vocab`-sized vocabulary to a
    /// `tgt_vocab`-sized vocabulary, with `bos` the target begin-of-sentence
    /// token fed to the decoder at step zero.
    ///
    /// # Panics
    ///
    /// Panics if either vocabulary is empty, `bos >= tgt_vocab`, or any
    /// config dimension is zero.
    pub fn new(src_vocab: usize, tgt_vocab: usize, bos: usize, cfg: Seq2SeqConfig) -> Self {
        assert!(
            src_vocab > 0 && tgt_vocab > 0,
            "vocabularies must be non-empty"
        );
        assert!(
            bos < tgt_vocab,
            "bos token {bos} outside target vocabulary {tgt_vocab}"
        );
        assert!(
            cfg.embed_dim > 0 && cfg.hidden > 0 && cfg.layers > 0 && cfg.batch_size > 0,
            "model dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let src_emb = params.add(Matrix::xavier(src_vocab, cfg.embed_dim, &mut rng));
        let tgt_emb = params.add(Matrix::xavier(tgt_vocab, cfg.embed_dim, &mut rng));
        let encoder = Recurrent::new(
            cfg.cell,
            &mut params,
            cfg.embed_dim,
            cfg.hidden,
            cfg.layers,
            &mut rng,
        );
        let dec_input = if cfg.input_feeding {
            cfg.embed_dim + cfg.hidden
        } else {
            cfg.embed_dim
        };
        let decoder = Recurrent::new(
            cfg.cell,
            &mut params,
            dec_input,
            cfg.hidden,
            cfg.layers,
            &mut rng,
        );
        let w_a = match cfg.attention {
            AttentionKind::Dot => None,
            AttentionKind::General => {
                Some(params.add(Matrix::xavier(cfg.hidden, cfg.hidden, &mut rng)))
            }
        };
        let w_c = params.add(Matrix::xavier(2 * cfg.hidden, cfg.hidden, &mut rng));
        let b_c = params.add(Matrix::zeros(1, cfg.hidden));
        let w_out = params.add(Matrix::xavier(cfg.hidden, tgt_vocab, &mut rng));
        let b_out = params.add(Matrix::zeros(1, tgt_vocab));
        let optimizer = Adam::new(cfg.learning_rate);
        Self {
            cfg,
            params,
            optimizer,
            src_vocab,
            tgt_vocab,
            bos,
            src_emb,
            tgt_emb,
            encoder,
            decoder,
            w_a,
            w_c,
            b_c,
            w_out,
            b_out,
            infer: InferCache::new(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.cfg
    }

    /// Source vocabulary size.
    pub fn src_vocab(&self) -> usize {
        self.src_vocab
    }

    /// Target vocabulary size.
    pub fn tgt_vocab(&self) -> usize {
        self.tgt_vocab
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        (0..self.params.len())
            .map(|i| self.params.value(i).data().len())
            .sum()
    }

    fn bind(&self, tape: &mut Tape) -> Bound {
        Bound {
            src_emb: tape.param(&self.params, self.src_emb),
            tgt_emb: tape.param(&self.params, self.tgt_emb),
            enc: self.encoder.bind(tape, &self.params),
            dec: self.decoder.bind(tape, &self.params),
            w_a: self.w_a.map(|w| tape.param(&self.params, w)),
            w_c: tape.param(&self.params, self.w_c),
            b_c: tape.param(&self.params, self.b_c),
            w_out: tape.param(&self.params, self.w_out),
            b_out: tape.param(&self.params, self.b_out),
        }
    }

    /// Encodes a batch; returns per-step top-layer hidden states and the
    /// final state.
    fn encode(
        &self,
        tape: &mut Tape,
        bound: &Bound,
        src: &[&[usize]],
        rng: Option<&mut StdRng>,
    ) -> (Vec<TensorId>, RecState) {
        let batch = src.len();
        let steps = src[0].len();
        let mut state = self.encoder.zero_state(tape, batch);
        let mut enc_hs = Vec::with_capacity(steps);
        let mut rng = rng;
        for t in 0..steps {
            let tokens: Vec<usize> = src.iter().map(|s| s[t]).collect();
            let mut x = tape.gather(bound.src_emb, &tokens);
            if let Some(r) = rng.as_deref_mut() {
                x = tape.dropout(x, self.cfg.dropout, r);
            }
            state = bound
                .enc
                .step(tape, x, &state, self.cfg.dropout, rng.as_deref_mut());
            enc_hs.push(state.top_h());
        }
        (enc_hs, state)
    }

    /// One decoder step: embeds `prev_tokens`, advances the stack, attends
    /// over `enc_hs` and returns `(logits, new_state, h_att)` — the
    /// attentional hidden state is fed back as extra input when input
    /// feeding is enabled.
    #[allow(clippy::too_many_arguments)]
    fn decode_step(
        &self,
        tape: &mut Tape,
        bound: &Bound,
        prev_tokens: &[usize],
        state: &RecState,
        prev_att: Option<TensorId>,
        enc_hs: &[TensorId],
        rng: Option<&mut StdRng>,
    ) -> (TensorId, RecState, TensorId) {
        let mut rng = rng;
        let mut x = tape.gather(bound.tgt_emb, prev_tokens);
        if let Some(r) = rng.as_deref_mut() {
            x = tape.dropout(x, self.cfg.dropout, r);
        }
        if self.cfg.input_feeding {
            let feed = match prev_att {
                Some(h) => h,
                None => tape.leaf(Matrix::zeros(prev_tokens.len(), self.cfg.hidden)),
            };
            x = tape.concat_cols(x, feed);
        }
        let new_state = bound
            .dec
            .step(tape, x, state, self.cfg.dropout, rng.as_deref_mut());
        let h_top = new_state.top_h();

        // Luong attention over the encoder states: the query is h_t (dot)
        // or h_t W_a (general).
        let query = match bound.w_a {
            Some(w_a) => tape.matmul(h_top, w_a),
            None => h_top,
        };
        let score_cols: Vec<TensorId> = enc_hs.iter().map(|&hs| tape.row_dot(query, hs)).collect();
        let mut scores = score_cols[0];
        for &c in &score_cols[1..] {
            scores = tape.concat_cols(scores, c);
        }
        let weights = tape.softmax(scores);
        let mut context: Option<TensorId> = None;
        for (s, &hs) in enc_hs.iter().enumerate() {
            let w_col = tape.slice_cols(weights, s, 1);
            let part = tape.mul_col(hs, w_col);
            context = Some(match context {
                Some(acc) => tape.add(acc, part),
                None => part,
            });
        }
        let context = context.expect("attention over at least one encoder state");

        let cat = tape.concat_cols(context, h_top);
        let mut h_att = tape.matmul(cat, bound.w_c);
        h_att = tape.add_row(h_att, bound.b_c);
        h_att = tape.tanh(h_att);
        let feed_back = h_att;
        if let Some(r) = rng {
            h_att = tape.dropout(h_att, self.cfg.dropout, r);
        }
        let mut logits = tape.matmul(h_att, bound.w_out);
        logits = tape.add_row(logits, bound.b_out);
        (logits, new_state, feed_back)
    }

    /// Runs one teacher-forced training step on a batch and returns the mean
    /// per-token cross-entropy loss. The caller owns the tape and resets it
    /// between steps so buffer allocations are reused across the whole run.
    fn train_batch(
        &mut self,
        tape: &mut Tape,
        src: &[&[usize]],
        tgt: &[&[usize]],
        rng: &mut StdRng,
    ) -> f32 {
        tape.reset();
        let bound = self.bind(tape);
        let (enc_hs, final_state) = self.encode(tape, &bound, src, Some(rng));
        let tgt_len = tgt[0].len();
        let batch = tgt.len();
        let mut state = final_state;
        let mut att: Option<TensorId> = None;
        let mut losses = Vec::with_capacity(tgt_len);
        for t in 0..tgt_len {
            let prev: Vec<usize> = if t == 0 {
                vec![self.bos; batch]
            } else {
                tgt.iter().map(|s| s[t - 1]).collect()
            };
            let (logits, new_state, new_att) =
                self.decode_step(tape, &bound, &prev, &state, att, &enc_hs, Some(rng));
            state = new_state;
            att = Some(new_att);
            let targets: Vec<usize> = tgt.iter().map(|s| s[t]).collect();
            losses.push(tape.cross_entropy(logits, &targets));
        }
        let loss = tape.mean_of(&losses);
        let loss_value = tape.value(loss).get(0, 0);
        self.params.zero_grads();
        tape.backward_accumulate(loss, &mut self.params);
        self.params.clip_grads(self.cfg.grad_clip);
        self.optimizer.step(&mut self.params);
        loss_value
    }

    /// Trains on aligned sentence pairs for `config().train_steps` mini-batch
    /// updates and returns the loss curve.
    ///
    /// # Errors
    ///
    /// Returns an error if `pairs` is empty, any sentence is empty, lengths
    /// are inconsistent, or a token is out of vocabulary. Returns
    /// [`NnError::Diverged`] as soon as a step's loss is NaN or infinite —
    /// the parameters are corrupted past that point, so training stops
    /// immediately instead of burning the remaining steps; callers should
    /// discard the model and retrain (typically re-seeded, with a lower
    /// learning rate).
    pub fn fit(&mut self, pairs: &[(Vec<usize>, Vec<usize>)]) -> Result<Vec<f32>, NnError> {
        self.validate(pairs)?;
        let mut span = mdes_obs::span("nn.fit");
        span.field("steps", self.cfg.train_steps);
        // Parameters are about to change; any packed inference weights are
        // stale from here on.
        self.infer.clear();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut losses = Vec::with_capacity(self.cfg.train_steps);
        // One tape for the whole run: every step replays the same op sequence,
        // so after the first step the forward+backward pass reuses its buffers
        // instead of allocating.
        let mut tape = Tape::new();
        for step in 0..self.cfg.train_steps {
            let batch: Vec<usize> = (0..self.cfg.batch_size)
                .map(|_| rng.gen_range(0..pairs.len()))
                .collect();
            let src: Vec<&[usize]> = batch.iter().map(|&i| pairs[i].0.as_slice()).collect();
            let tgt: Vec<&[usize]> = batch.iter().map(|&i| pairs[i].1.as_slice()).collect();
            let loss = self.train_batch(&mut tape, &src, &tgt, &mut rng);
            if !loss.is_finite() {
                mdes_obs::event(
                    "nn.diverged",
                    &[("step", step.into()), ("seed", self.cfg.seed.into())],
                );
                return Err(NnError::Diverged { step });
            }
            losses.push(loss);
        }
        span.field(
            "final_loss",
            f64::from(losses.last().copied().unwrap_or(0.0)),
        );
        Ok(losses)
    }

    fn validate(&self, pairs: &[(Vec<usize>, Vec<usize>)]) -> Result<(), NnError> {
        if pairs.is_empty() {
            return Err(NnError::EmptyCorpus);
        }
        let (src_len, tgt_len) = (pairs[0].0.len(), pairs[0].1.len());
        if src_len == 0 || tgt_len == 0 {
            return Err(NnError::EmptySequence);
        }
        for (s, t) in pairs {
            if s.len() != src_len {
                return Err(NnError::RaggedSequences {
                    expected: src_len,
                    found: s.len(),
                });
            }
            if t.len() != tgt_len {
                return Err(NnError::RaggedSequences {
                    expected: tgt_len,
                    found: t.len(),
                });
            }
            if let Some(&tok) = s.iter().find(|&&tok| tok >= self.src_vocab) {
                return Err(NnError::TokenOutOfRange {
                    token: tok,
                    vocab: self.src_vocab,
                });
            }
            if let Some(&tok) = t.iter().find(|&&tok| tok >= self.tgt_vocab) {
                return Err(NnError::TokenOutOfRange {
                    token: tok,
                    vocab: self.tgt_vocab,
                });
            }
        }
        Ok(())
    }

    fn validate_src(&self, srcs: &[&[usize]], out_len: usize) -> Result<(), NnError> {
        if srcs.is_empty() {
            return Err(NnError::EmptyCorpus);
        }
        if out_len == 0 || srcs[0].is_empty() {
            return Err(NnError::EmptySequence);
        }
        let src_len = srcs[0].len();
        for s in srcs {
            if s.len() != src_len {
                return Err(NnError::RaggedSequences {
                    expected: src_len,
                    found: s.len(),
                });
            }
            if let Some(&tok) = s.iter().find(|&&tok| tok >= self.src_vocab) {
                return Err(NnError::TokenOutOfRange {
                    token: tok,
                    vocab: self.src_vocab,
                });
            }
        }
        Ok(())
    }

    /// Freezes the current parameters into a serving artifact.
    ///
    /// The returned [`ModelSpec`] carries only packed weights — no tape,
    /// optimizer moments or gradient buffers — serializes compactly, and
    /// decodes bit-identically to the tape oracle through an
    /// [`crate::infer::InferArena`] (pinned by `tests/infer_parity.rs`).
    /// This is the artifact serving layers deploy and hot-swap.
    pub fn freeze(&self) -> ModelSpec {
        use crate::QMatrix;
        ModelSpec {
            src_emb: QMatrix::F32(self.params.value(self.src_emb).clone()),
            tgt_emb: QMatrix::F32(self.params.value(self.tgt_emb).clone()),
            encoder: self.encoder.pack_infer(&self.params),
            decoder: self.decoder.pack_infer(&self.params),
            w_a: self.w_a.map(|w| QMatrix::F32(self.params.value(w).clone())),
            w_c: QMatrix::F32(self.params.value(self.w_c).clone()),
            b_c: self.params.value(self.b_c).clone(),
            w_out: QMatrix::F32(self.params.value(self.w_out).clone()),
            b_out: self.params.value(self.b_out).clone(),
            hidden: self.cfg.hidden,
            input_feeding: self.cfg.input_feeding,
            bos: self.bos,
        }
    }

    /// Runs `f` against this model's cached inference context, packing the
    /// weights on first use.
    fn with_infer<R>(&self, f: impl FnOnce(&mut InferCtx) -> R) -> R {
        self.infer.with(|| InferCtx::new(self.freeze()), f)
    }

    /// Greedily translates a batch of equal-length source sentences into
    /// sentences of `out_len` tokens each, on the tape-free inference
    /// engine ([`crate::infer`]). Output is bit-identical to
    /// [`Seq2Seq::translate_batch_tape`].
    ///
    /// # Errors
    ///
    /// Returns an error if `srcs` is empty, sentences are empty or ragged, a
    /// token is out of vocabulary, or `out_len` is zero.
    pub fn translate_batch(
        &self,
        srcs: &[&[usize]],
        out_len: usize,
    ) -> Result<Vec<Vec<usize>>, NnError> {
        self.validate_src(srcs, out_len)?;
        Ok(self.with_infer(|ctx| ctx.translate_batch(srcs, out_len)))
    }

    /// Batched greedy translation on the autodiff tape, kept compiled as the
    /// parity oracle for the inference engine (the same pattern as
    /// [`crate::reference`] for the fast kernels).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Seq2Seq::translate_batch`].
    pub fn translate_batch_tape(
        &self,
        srcs: &[&[usize]],
        out_len: usize,
    ) -> Result<Vec<Vec<usize>>, NnError> {
        self.validate_src(srcs, out_len)?;
        let batch = srcs.len();
        let mut tape = Tape::new();
        let bound = self.bind(&mut tape);
        let (enc_hs, final_state) = self.encode(&mut tape, &bound, srcs, None);
        let mut state = final_state;
        let mut att: Option<TensorId> = None;
        let mut prev = vec![self.bos; batch];
        let mut out = vec![Vec::with_capacity(out_len); batch];
        for _ in 0..out_len {
            let (logits, new_state, new_att) =
                self.decode_step(&mut tape, &bound, &prev, &state, att, &enc_hs, None);
            state = new_state;
            att = Some(new_att);
            for (b, o) in out.iter_mut().enumerate() {
                let tok = tape.value(logits).argmax_row(b);
                o.push(tok);
            }
            prev = out
                .iter()
                .map(|o| *o.last().expect("pushed above"))
                .collect();
        }
        Ok(out)
    }

    /// Greedily translates a single source sentence (engine path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Seq2Seq::translate_batch`].
    pub fn translate(&self, src: &[usize], out_len: usize) -> Result<Vec<usize>, NnError> {
        Ok(self
            .translate_batch(&[src], out_len)?
            .pop()
            .expect("one output per input"))
    }

    /// Single-sentence greedy translation on the tape oracle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Seq2Seq::translate_batch`].
    pub fn translate_tape(&self, src: &[usize], out_len: usize) -> Result<Vec<usize>, NnError> {
        Ok(self
            .translate_batch_tape(&[src], out_len)?
            .pop()
            .expect("one output per input"))
    }

    /// Beam-search translation of a single source sentence: keeps the
    /// `beam_width` highest-log-probability hypotheses at each step and
    /// returns the best complete one. `beam_width = 1` is equivalent to
    /// greedy decoding. Runs on the tape-free inference engine; output is
    /// bit-identical to [`Seq2Seq::translate_beam_tape`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Seq2Seq::translate_batch`], plus
    /// [`NnError::EmptySequence`] when `beam_width` is zero.
    pub fn translate_beam(
        &self,
        src: &[usize],
        out_len: usize,
        beam_width: usize,
    ) -> Result<Vec<usize>, NnError> {
        if beam_width == 0 {
            return Err(NnError::EmptySequence);
        }
        self.validate_src(&[src], out_len)?;
        Ok(self.with_infer(|ctx| {
            ctx.encode(&[src]);
            struct Hyp {
                tokens: Vec<usize>,
                logp: f64,
                state: InferState,
            }
            let mut start = InferState::default();
            ctx.start_state(&mut start);
            let mut beam = vec![Hyp {
                tokens: Vec::new(),
                logp: 0.0,
                state: start,
            }];
            for _ in 0..out_len {
                let mut candidates: Vec<Hyp> = Vec::with_capacity(beam.len() * beam_width);
                for hyp in &beam {
                    let prev = *hyp.tokens.last().unwrap_or(&self.bos);
                    let mut state = hyp.state.clone();
                    ctx.decode_step(&[prev], &mut state);
                    let log_probs = row_log_softmax(ctx.logits().row(0));
                    for &(tok, lp) in top_k(&log_probs, beam_width).iter() {
                        let mut tokens = hyp.tokens.clone();
                        tokens.push(tok);
                        candidates.push(Hyp {
                            tokens,
                            logp: hyp.logp + lp,
                            state: state.clone(),
                        });
                    }
                }
                candidates.sort_by(|a, b| b.logp.total_cmp(&a.logp));
                candidates.truncate(beam_width);
                beam = candidates;
            }
            beam.into_iter().next().expect("beam is never empty").tokens
        }))
    }

    /// Beam-search translation on the autodiff tape, kept compiled as the
    /// parity oracle for the engine's beam path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Seq2Seq::translate_beam`].
    pub fn translate_beam_tape(
        &self,
        src: &[usize],
        out_len: usize,
        beam_width: usize,
    ) -> Result<Vec<usize>, NnError> {
        if beam_width == 0 {
            return Err(NnError::EmptySequence);
        }
        self.validate_src(&[src], out_len)?;
        let mut tape = Tape::new();
        let bound = self.bind(&mut tape);
        let (enc_hs, final_state) = self.encode(&mut tape, &bound, &[src], None);

        struct Hyp {
            tokens: Vec<usize>,
            logp: f64,
            state: RecState,
            att: Option<TensorId>,
        }
        let mut beam = vec![Hyp {
            tokens: Vec::new(),
            logp: 0.0,
            state: final_state,
            att: None,
        }];
        for _ in 0..out_len {
            let mut candidates: Vec<Hyp> = Vec::with_capacity(beam.len() * beam_width);
            for hyp in &beam {
                let prev = *hyp.tokens.last().unwrap_or(&self.bos);
                let (logits, new_state, new_att) = self.decode_step(
                    &mut tape,
                    &bound,
                    &[prev],
                    &hyp.state,
                    hyp.att,
                    &enc_hs,
                    None,
                );
                let log_probs = row_log_softmax(tape.value(logits).row(0));
                for &(tok, lp) in top_k(&log_probs, beam_width).iter() {
                    let mut tokens = hyp.tokens.clone();
                    tokens.push(tok);
                    candidates.push(Hyp {
                        tokens,
                        logp: hyp.logp + lp,
                        state: new_state.clone(),
                        att: Some(new_att),
                    });
                }
            }
            candidates.sort_by(|a, b| b.logp.total_cmp(&a.logp));
            candidates.truncate(beam_width);
            beam = candidates;
        }
        Ok(beam.into_iter().next().expect("beam is never empty").tokens)
    }
}

/// Row log-softmax in f64 for numerically stable beam scoring.
fn row_log_softmax(row: &[f32]) -> Vec<f64> {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let log_z: f64 = row
        .iter()
        .map(|&v| ((v as f64) - max).exp())
        .sum::<f64>()
        .ln()
        + max;
    row.iter().map(|&v| v as f64 - log_z).collect()
}

/// Indices and values of the `k` largest entries, descending.
fn top_k(values: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut idx: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    idx.sort_by(|a, b| b.1.total_cmp(&a.1));
    idx.truncate(k.max(1));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a toy corpus where the target is the source with every token
    /// shifted by one (mod vocab) — learnable by a tiny model.
    fn shifted_corpus(n: usize, len: usize, vocab: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|_| {
                let src: Vec<usize> = (0..len).map(|_| rng.gen_range(2..vocab)).collect();
                let tgt: Vec<usize> = src.iter().map(|&t| (t + 1) % vocab).collect();
                (src, tgt)
            })
            .collect()
    }

    fn tiny_config() -> Seq2SeqConfig {
        Seq2SeqConfig {
            embed_dim: 16,
            hidden: 16,
            layers: 1,
            dropout: 0.1,
            learning_rate: 0.02,
            train_steps: 120,
            batch_size: 8,
            grad_clip: 5.0,
            seed: 11,
            ..Seq2SeqConfig::default()
        }
    }

    fn accuracy(model: &Seq2Seq, corpus: &[(Vec<usize>, Vec<usize>)]) -> f32 {
        let mut correct = 0;
        let mut total = 0;
        for (src, tgt) in corpus.iter().take(10) {
            let hyp = model.translate(src, tgt.len()).expect("translate");
            correct += hyp.iter().zip(tgt).filter(|(a, b)| a == b).count();
            total += tgt.len();
        }
        correct as f32 / total as f32
    }

    #[test]
    fn fit_reduces_loss_and_translates_shift_task() {
        let corpus = shifted_corpus(40, 5, 8);
        let mut model = Seq2Seq::new(8, 8, 1, tiny_config());
        let losses = model.fit(&corpus).expect("fit");
        let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(tail < head * 0.5, "loss did not drop: {head} -> {tail}");
        let acc = accuracy(&model, &corpus);
        assert!(acc > 0.6, "accuracy too low: {acc}");
    }

    #[test]
    fn gru_cell_learns_the_task_with_fewer_parameters() {
        let corpus = shifted_corpus(40, 5, 8);
        let lstm = Seq2Seq::new(8, 8, 1, tiny_config());
        let mut model = Seq2Seq::new(
            8,
            8,
            1,
            Seq2SeqConfig {
                cell: CellKind::Gru,
                train_steps: 150,
                ..tiny_config()
            },
        );
        assert!(model.parameter_count() < lstm.parameter_count());
        model.fit(&corpus).expect("fit");
        let acc = accuracy(&model, &corpus);
        assert!(acc > 0.6, "gru accuracy too low: {acc}");
    }

    #[test]
    fn general_attention_learns_the_task() {
        let corpus = shifted_corpus(40, 5, 8);
        let mut model = Seq2Seq::new(
            8,
            8,
            1,
            Seq2SeqConfig {
                attention: AttentionKind::General,
                ..tiny_config()
            },
        );
        model.fit(&corpus).expect("fit");
        let acc = accuracy(&model, &corpus);
        assert!(acc > 0.6, "general-attention accuracy too low: {acc}");
    }

    #[test]
    fn input_feeding_learns_the_task() {
        let corpus = shifted_corpus(40, 5, 8);
        let mut model = Seq2Seq::new(
            8,
            8,
            1,
            Seq2SeqConfig {
                input_feeding: true,
                train_steps: 150,
                ..tiny_config()
            },
        );
        model.fit(&corpus).expect("fit");
        let acc = accuracy(&model, &corpus);
        assert!(acc > 0.6, "input-feeding accuracy too low: {acc}");
    }

    #[test]
    fn two_layer_stack_learns_the_task() {
        let corpus = shifted_corpus(40, 5, 8);
        let mut model = Seq2Seq::new(
            8,
            8,
            1,
            Seq2SeqConfig {
                layers: 2,
                train_steps: 160,
                ..tiny_config()
            },
        );
        model.fit(&corpus).expect("fit");
        let acc = accuracy(&model, &corpus);
        assert!(acc > 0.55, "two-layer accuracy too low: {acc}");
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        let corpus = shifted_corpus(20, 4, 6);
        let mut cfg = tiny_config();
        cfg.train_steps = 40;
        let mut model = Seq2Seq::new(6, 6, 1, cfg);
        model.fit(&corpus).expect("fit");
        for (src, _) in corpus.iter().take(5) {
            let greedy = model.translate(src, 4).expect("greedy");
            let beam = model.translate_beam(src, 4, 1).expect("beam");
            assert_eq!(greedy, beam);
        }
    }

    #[test]
    fn wider_beam_never_scores_worse_in_log_prob() {
        // Beam search maximizes sequence log-probability; with a wider beam
        // the produced sequence exists within the candidate pool of the
        // narrow beam's search, so both must at least produce valid output.
        let corpus = shifted_corpus(20, 4, 6);
        let mut cfg = tiny_config();
        cfg.train_steps = 40;
        let mut model = Seq2Seq::new(6, 6, 1, cfg);
        model.fit(&corpus).expect("fit");
        let out = model.translate_beam(&corpus[0].0, 4, 4).expect("beam");
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|&t| t < 6));
    }

    #[test]
    fn beam_zero_rejected() {
        let model = Seq2Seq::new(4, 4, 0, tiny_config());
        assert_eq!(
            model.translate_beam(&[1, 2], 2, 0),
            Err(NnError::EmptySequence)
        );
    }

    #[test]
    fn translate_output_length_and_range() {
        let corpus = shifted_corpus(10, 4, 6);
        let mut cfg = tiny_config();
        cfg.train_steps = 5;
        let mut model = Seq2Seq::new(6, 6, 1, cfg);
        model.fit(&corpus).expect("fit");
        let out = model.translate(&corpus[0].0, 7).expect("translate");
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|&t| t < 6));
    }

    #[test]
    fn absurd_learning_rate_surfaces_as_diverged() {
        let corpus = shifted_corpus(20, 4, 6);
        let mut cfg = tiny_config();
        // Adam's per-step update magnitude is ~learning_rate, so the output
        // projection overflows f32 within a few steps, logits hit ±inf, and
        // the (max-subtracted) cross-entropy produces inf - inf = NaN.
        cfg.learning_rate = 1e38;
        cfg.train_steps = 50;
        let mut model = Seq2Seq::new(6, 6, 1, cfg);
        let r = model.fit(&corpus);
        assert!(
            matches!(r, Err(NnError::Diverged { .. })),
            "expected divergence, got {r:?}"
        );
    }

    #[test]
    fn fit_rejects_empty_corpus() {
        let mut model = Seq2Seq::new(4, 4, 0, tiny_config());
        assert_eq!(model.fit(&[]), Err(NnError::EmptyCorpus));
    }

    #[test]
    fn fit_rejects_ragged_sources() {
        let mut model = Seq2Seq::new(4, 4, 0, tiny_config());
        let pairs = vec![(vec![1, 2], vec![1, 2]), (vec![1], vec![1, 2])];
        assert_eq!(
            model.fit(&pairs),
            Err(NnError::RaggedSequences {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn fit_rejects_out_of_vocab_token() {
        let mut model = Seq2Seq::new(4, 4, 0, tiny_config());
        let pairs = vec![(vec![1, 9], vec![1, 2])];
        assert_eq!(
            model.fit(&pairs),
            Err(NnError::TokenOutOfRange { token: 9, vocab: 4 })
        );
    }

    #[test]
    fn translate_rejects_zero_length_output() {
        let model = Seq2Seq::new(4, 4, 0, tiny_config());
        assert_eq!(model.translate(&[1, 2], 0), Err(NnError::EmptySequence));
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = shifted_corpus(10, 4, 6);
        let mut cfg = tiny_config();
        cfg.train_steps = 10;
        let mut a = Seq2Seq::new(6, 6, 1, cfg.clone());
        let mut b = Seq2Seq::new(6, 6, 1, cfg);
        let la = a.fit(&corpus).expect("fit a");
        let lb = b.fit(&corpus).expect("fit b");
        assert_eq!(la, lb);
        assert_eq!(
            a.translate(&corpus[0].0, 4).expect("ta"),
            b.translate(&corpus[0].0, 4).expect("tb")
        );
    }

    #[test]
    fn serde_roundtrip_preserves_translation() {
        let corpus = shifted_corpus(10, 4, 6);
        let mut cfg = tiny_config();
        cfg.train_steps = 20;
        let mut model = Seq2Seq::new(6, 6, 1, cfg);
        model.fit(&corpus).expect("fit");
        let json = serde_json::to_string(&model).expect("serialize");
        let restored: Seq2Seq = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(
            model.translate(&corpus[1].0, 4).expect("orig"),
            restored.translate(&corpus[1].0, 4).expect("restored")
        );
    }

    #[test]
    fn log_softmax_normalizes() {
        let row = vec![1.0f32, 2.0, 3.0];
        let lp = row_log_softmax(&row);
        let sum: f64 = lp.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(lp[2] > lp[1] && lp[1] > lp[0]);
    }

    #[test]
    fn top_k_returns_descending() {
        let v = vec![0.1, 0.9, 0.5, 0.7];
        let t = top_k(&v, 2);
        assert_eq!(t[0].0, 1);
        assert_eq!(t[1].0, 3);
    }
}
