//! Reference GEMM kernels — the original naive loops, kept verbatim.
//!
//! These are the straightforward triple loops the crate shipped with before
//! the blocked kernels in [`crate::matrix`] replaced them on the hot path.
//! They stay compiled in every build and serve two purposes:
//!
//! 1. **Test oracle.** The parity suite (`tests/parity.rs`) checks the fast
//!    kernels against these implementations on random shapes.
//! 2. **Escape hatch.** Building with `--features reference-kernels` routes
//!    `Matrix::matmul` / `matmul_tn` / `matmul_nt` back through these
//!    functions, so any suspected kernel miscompare can be bisected at the
//!    pipeline level without touching code.
//!
//! They are deliberately *not* optimized: the `== 0.0` skip and the scalar
//! accumulation order are part of the historical behaviour being preserved.

use crate::matrix::Matrix;

/// Naive `a * b` (i-k-j loop order, zero-skip on `a[i][k]`).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (k, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (o, &v) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * v;
            }
        }
    }
    out
}

/// Naive `a^T * b` (rank-1 updates over the shared row index, zero-skip).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        let a_row = a.row(k);
        let b_row = b.row(k);
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Naive `a * b^T` (one scalar dot product per output element).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    out
}

/// Libm-exact logistic sigmoid, `1 / (1 + e^-x)` with `f32::exp` — the
/// activation the crate shipped with. Oracle for the polynomial fast path
/// in [`crate::matrix::sigmoid_slice`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sigmoid_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "sigmoid_slice length mismatch");
    for (o, &x) in dst.iter_mut().zip(src) {
        *o = 1.0 / (1.0 + (-x).exp());
    }
}

/// Libm-exact hyperbolic tangent (`f32::tanh`). Oracle for the polynomial
/// fast path in [`crate::matrix::tanh_slice`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn tanh_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "tanh_slice length mismatch");
    for (o, &x) in dst.iter_mut().zip(src) {
        *o = x.tanh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        assert_eq!(matmul(&a, &b).data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn reference_tn_nt_consistent_with_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let c = Matrix::from_fn(5, 3, |r, c| (r + c) as f32 * 0.125);
        assert_eq!(matmul_tn(&a, &b), matmul(&a.transpose(), &b));
        assert_eq!(matmul_nt(&a, &c), matmul(&a, &c.transpose()));
    }
}
