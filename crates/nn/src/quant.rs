//! Quantized weight storage and the quantized GEMM kernel family.
//!
//! The f32 fast kernels in [`crate::matrix`] are pinned bit-identical to
//! [`crate::reference`]; quantized inference deliberately is **not**. A
//! [`QMatrix`] stores a weight operand in one of three encodings —
//!
//! * [`QMatrix::F32`]: the plain [`Matrix`], byte- and bit-compatible with
//!   every artifact produced before quantization existed;
//! * [`QMatrix::F16`]: IEEE 754 binary16 bits in a `Vec<u16>` (half the
//!   bytes, ≤ 2^-11 relative rounding error per weight);
//! * [`QMatrix::Int8`]: symmetric per-row-scale int8 (`q = round(x / s)`,
//!   `s = max_abs(row) / 127`), a quarter of the bytes with an absolute
//!   error of at most `s / 2` per weight
//!
//! — and [`Matrix::matmul_q_into`] multiplies an f32 activation against any
//! of them. The F32 arm routes through the bit-identity-pinned
//! [`Matrix::matmul_into`]; the F16/Int8 arms use dedicated kernels that
//! dequantize weight tiles on load (one scale broadcast per packed row) into
//! a wider 4×32 register tile, and extend the runtime dispatch with an
//! AVX2+FMA tier (`mul_add` contracts to hardware FMA only inside the
//! `#[target_feature(enable = "avx2,fma")]` clone; the f32 path keeps FMA
//! off because contraction would break bit parity with the reference loops,
//! as documented in `crate::matrix`).
//!
//! Accuracy is governed by the drift harness instead of bit parity:
//! `crates/nn/tests/quant_parity.rs` proptests reconstruction error against
//! the analytic bounds above and quantized GEMM output against an
//! elementwise error budget, and the serving layer
//! (`mdes_core::serve::GraphSnapshot::quantize`) refuses to publish an
//! artifact whose measured score drift exceeds its declared bound.
//!
//! Every output element is still accumulated in strictly ascending
//! shared-index order with a per-element chain that never depends on the
//! batch size, so quantized decode — like f32 decode — is invariant to how
//! windows are batched. Cross-session batching in `push_opt_many` relies on
//! this.

use crate::matrix::Matrix;
use crate::NnError;
use serde::{Content, DeError, Deserialize, Serialize};

/// Weight encoding of a frozen artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantMode {
    /// Full-precision f32 weights (the only mode before MDSN v2).
    F32,
    /// IEEE binary16 weights: 2 bytes/weight, ≤ 2^-11 relative error.
    F16,
    /// Symmetric per-row-scale int8: 1 byte/weight + one f32 scale per row.
    Int8,
}

impl QuantMode {
    /// Lower-case wire/display name (`"f32"`, `"f16"`, `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::F32 => "f32",
            QuantMode::F16 => "f16",
            QuantMode::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// f16 conversion
// ---------------------------------------------------------------------------

/// Decodes IEEE binary16 bits to f32.
///
/// Branch-free multiply trick: the f16 exponent/mantissa shifted into f32
/// position decodes to `2^(e - 127) · 1.m`; multiplying by `2^112` rebases
/// the exponent to the f16 bias (`e - 15`) and renormalizes subnormals for
/// free. Inf/NaN bit patterns decode to large finite values instead — the
/// deserializer rejects them, and [`f32_to_f16`] never produces them.
#[inline(always)]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let mag = u32::from(h & 0x7fff) << 13;
    let val = f32::from_bits(mag) * f32::from_bits(0x7780_0000); // × 2^112
    f32::from_bits(val.to_bits() | sign)
}

/// Encodes an f32 as IEEE binary16 bits, rounding to nearest-even.
///
/// Magnitudes that would round past the largest finite f16 (65504) saturate
/// there instead of producing Inf, and non-finite inputs saturate too —
/// quantized weights must stay finite (callers reject non-finite weights
/// before encoding; this keeps the conversion total anyway).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x477f_f000 {
        // 65520 rounds to 65536 > f16 max; saturate (also Inf/NaN inputs).
        return sign | 0x7bff;
    }
    if abs >= 0x3880_0000 {
        // Normal f16: rebias the exponent (127 → 15) and drop 13 mantissa
        // bits, rounding to nearest-even via the parity-plus-half trick
        // (the carry propagates into the exponent field correctly).
        let adj = abs - (112 << 23);
        let round = ((adj >> 13) & 1) + 0x0fff;
        return sign | ((adj + round) >> 13) as u16;
    }
    if abs >= 0x3300_0000 {
        // Subnormal f16 (2^-25 ≤ |x| < 2^-14): shift the implicit-bit
        // mantissa down by the exponent deficit, ties to even.
        let exp = (abs >> 23) as i32 - 127;
        let mant = (abs & 0x007f_ffff) | 0x0080_0000;
        let shift = (13 + (-14 - exp)) as u32;
        let lower = mant & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut h = (mant >> shift) as u16;
        if lower > half || (lower == half && h & 1 == 1) {
            h += 1;
        }
        return sign | h;
    }
    sign // |x| < 2^-25 underflows to (signed) zero
}

/// Summary returned by [`crate::infer::ModelSpec::quantize`]: what the
/// artifact was re-encoded to and how far the weights moved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantReport {
    /// Encoding the weights were converted to.
    pub mode: QuantMode,
    /// Largest elementwise `|quantized - f32|` across every re-encoded
    /// weight matrix (0.0 for `F32`).
    pub max_weight_error: f64,
    /// Number of weight matrices re-encoded (biases are excluded — they
    /// always stay f32).
    pub matrices: usize,
}

// ---------------------------------------------------------------------------
// QMatrix
// ---------------------------------------------------------------------------

/// A weight matrix in one of the [`QuantMode`] encodings.
///
/// Shapes and serialization stay row-major. The `F32` arm serializes
/// exactly like a bare [`Matrix`] (`{rows, cols, data}`), so pre-quantization
/// artifacts (MDSN v1, old MDCK checkpoints) deserialize unchanged; the
/// quantized arms add a discriminating key (`"f16"` / `"i8"`) that the
/// deserializer dispatches on.
#[derive(Clone, Debug, PartialEq)]
pub enum QMatrix {
    /// Full-precision weights.
    F32(Matrix),
    /// binary16 weights, row-major.
    F16 {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Row-major binary16 bit patterns, `rows * cols` entries.
        data: Vec<u16>,
    },
    /// Symmetric per-row-scale int8 weights, row-major.
    Int8 {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// One dequantization scale per row (`x ≈ scale * q`).
        scales: Vec<f32>,
        /// Row-major quantized values in `[-127, 127]`.
        data: Vec<i8>,
    },
}

impl QMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            QMatrix::F32(m) => m.rows(),
            QMatrix::F16 { rows, .. } | QMatrix::Int8 { rows, .. } => *rows,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            QMatrix::F32(m) => m.cols(),
            QMatrix::F16 { cols, .. } | QMatrix::Int8 { cols, .. } => *cols,
        }
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// The encoding of this matrix.
    pub fn mode(&self) -> QuantMode {
        match self {
            QMatrix::F32(_) => QuantMode::F32,
            QMatrix::F16 { .. } => QuantMode::F16,
            QMatrix::Int8 { .. } => QuantMode::Int8,
        }
    }

    /// Approximate heap footprint in bytes — the serving-side cost of
    /// holding this operand resident.
    pub fn approx_bytes(&self) -> usize {
        match self {
            QMatrix::F32(m) => std::mem::size_of_val(m.data()),
            QMatrix::F16 { data, .. } => std::mem::size_of_val(data.as_slice()),
            QMatrix::Int8 { scales, data, .. } => {
                std::mem::size_of_val(scales.as_slice()) + std::mem::size_of_val(data.as_slice())
            }
        }
    }

    /// Encodes `m` in `mode`.
    ///
    /// Fails with [`NnError::NonFiniteWeight`] if any element is NaN or
    /// infinite — a quantized scale derived from a non-finite row maximum
    /// would silently poison every weight in the row.
    pub fn quantize(m: &Matrix, mode: QuantMode) -> Result<QMatrix, NnError> {
        if m.data().iter().any(|v| !v.is_finite()) {
            return Err(NnError::NonFiniteWeight);
        }
        let (rows, cols) = m.shape();
        Ok(match mode {
            QuantMode::F32 => QMatrix::F32(m.clone()),
            QuantMode::F16 => QMatrix::F16 {
                rows,
                cols,
                data: m.data().iter().map(|&x| f32_to_f16(x)).collect(),
            },
            QuantMode::Int8 => {
                let mut scales = Vec::with_capacity(rows);
                let mut data = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    let row = m.row(r);
                    let max_abs = row.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
                    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
                    scales.push(scale);
                    data.extend(row.iter().map(|&x| {
                        let q = (x / scale).round();
                        q.clamp(-127.0, 127.0) as i8
                    }));
                }
                QMatrix::Int8 {
                    rows,
                    cols,
                    scales,
                    data,
                }
            }
        })
    }

    /// Decodes back to full precision (exact for `F32`).
    pub fn dequantize(&self) -> Matrix {
        match self {
            QMatrix::F32(m) => m.clone(),
            QMatrix::F16 { rows, cols, data } => {
                Matrix::from_vec(*rows, *cols, data.iter().map(|&h| f16_to_f32(h)).collect())
            }
            QMatrix::Int8 {
                rows,
                cols,
                scales,
                data,
            } => {
                let mut out = Vec::with_capacity(rows * cols);
                for r in 0..*rows {
                    let s = scales[r];
                    out.extend(data[r * cols..(r + 1) * cols].iter().map(|&q| s * q as f32));
                }
                Matrix::from_vec(*rows, *cols, out)
            }
        }
    }

    /// Largest elementwise `|self - reference|` (0.0 for identical shapes
    /// with identical values).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_error(&self, reference: &Matrix) -> f64 {
        assert_eq!(
            self.shape(),
            reference.shape(),
            "max_abs_error shape mismatch"
        );
        let deq = self.dequantize();
        deq.data()
            .iter()
            .zip(reference.data())
            .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
            .fold(0.0, f64::max)
    }

    /// Dequantizes row `r` into `dst` (`dst.len()` must equal `cols`) — the
    /// embedding-lookup path.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or `dst` has the wrong length.
    #[inline]
    pub fn copy_row_into(&self, r: usize, dst: &mut [f32]) {
        match self {
            QMatrix::F32(m) => dst.copy_from_slice(m.row(r)),
            QMatrix::F16 { cols, data, .. } => {
                let src = &data[r * cols..(r + 1) * cols];
                assert_eq!(dst.len(), *cols, "copy_row_into length mismatch");
                for (o, &h) in dst.iter_mut().zip(src) {
                    *o = f16_to_f32(h);
                }
            }
            QMatrix::Int8 {
                cols, scales, data, ..
            } => {
                let src = &data[r * cols..(r + 1) * cols];
                assert_eq!(dst.len(), *cols, "copy_row_into length mismatch");
                let s = scales[r];
                for (o, &q) in dst.iter_mut().zip(src) {
                    *o = s * q as f32;
                }
            }
        }
    }
}

// --- serde: F32 must stay byte-compatible with a bare `Matrix` -------------

impl Serialize for QMatrix {
    fn to_content(&self) -> Content {
        match self {
            QMatrix::F32(m) => m.to_content(),
            QMatrix::F16 { rows, cols, data } => Content::Map(vec![
                ("rows".to_owned(), rows.to_content()),
                ("cols".to_owned(), cols.to_content()),
                ("f16".to_owned(), data.to_content()),
            ]),
            QMatrix::Int8 {
                rows,
                cols,
                scales,
                data,
            } => Content::Map(vec![
                ("rows".to_owned(), rows.to_content()),
                ("cols".to_owned(), cols.to_content()),
                ("scales".to_owned(), scales.to_content()),
                ("i8".to_owned(), data.to_content()),
            ]),
        }
    }
}

impl Deserialize for QMatrix {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let Content::Map(entries) = content else {
            return Err(DeError::mismatch("object", content));
        };
        let has = |k: &str| entries.iter().any(|(key, _)| key == k);
        let rows: usize = serde::__field(content, "rows")?;
        let cols: usize = serde::__field(content, "cols")?;
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| DeError::custom("matrix shape overflows"))?;
        if has("i8") {
            let scales: Vec<f32> = serde::__field(content, "scales")?;
            let data: Vec<i8> = serde::__field(content, "i8")?;
            if scales.len() != rows || data.len() != elems {
                return Err(DeError::custom(format!(
                    "int8 matrix {rows}x{cols} has {} scales / {} values",
                    scales.len(),
                    data.len()
                )));
            }
            if let Some(&bad) = scales.iter().find(|s| !s.is_finite()) {
                return Err(DeError::custom(format!("non-finite int8 scale {bad}")));
            }
            return Ok(QMatrix::Int8 {
                rows,
                cols,
                scales,
                data,
            });
        }
        if has("f16") {
            let data: Vec<u16> = serde::__field(content, "f16")?;
            if data.len() != elems {
                return Err(DeError::custom(format!(
                    "f16 matrix {rows}x{cols} has {} values",
                    data.len()
                )));
            }
            // Inf/NaN bit patterns (exponent field all ones) cannot come
            // from `f32_to_f16` and would silently decode to wrong finite
            // values through the multiply trick.
            if data.iter().any(|&h| h & 0x7c00 == 0x7c00) {
                return Err(DeError::custom("non-finite f16 weight"));
            }
            return Ok(QMatrix::F16 { rows, cols, data });
        }
        Matrix::from_content(content).map(QMatrix::F32)
    }
}

// ---------------------------------------------------------------------------
// Quantized GEMM: out = a(f32, m×k) · w(quantized, k×n)
// ---------------------------------------------------------------------------
//
// Structure mirrors `crate::matrix`'s kernels — register tiles accumulated
// across the whole shared dimension in strictly ascending `p` order, one
// independent chain per output element — but with two changes the f32 path
// cannot afford:
//
// * the `b` tile is dequantized on load (per packed row: one scale broadcast
//   for int8, a shift-and-multiply for f16), so the quantized bytes are the
//   only weight traffic through the cache;
// * the AVX2+FMA dispatch tier fuses the multiply-accumulate (`mul_add`
//   contracts to `vfmadd` only inside the `avx2,fma` target-feature clone).
//   Fusing changes rounding, which is fine here: the quantized path is
//   drift-bounded, not bit-pinned. The tile is also twice as wide (4×32) —
//   16 ymm accumulators instead of 8 — because halving the weight bytes
//   makes the f32 accumulator traffic the next bottleneck.
//
// The f16 dispatch has one extra tier above AVX2+FMA: when the host also
// reports F16C, the tile dequant runs through hardware `vcvtph2ps`
// (`deq_f16_tile`) instead of the scalar multiply trick. f16→f32 widening
// is exact either way, so that tier changes no bits — only the dequant
// throughput, which is what made the scalar f16 path slower than f32.

/// Output rows per quantized micro-kernel pass.
const QMR: usize = 4;
/// Output columns per quantized micro-kernel pass (wider than the f32
/// kernels' 16: the dequantized tile is cheap to stream, the accumulators
/// are not).
const QNR: usize = 32;

impl Matrix {
    /// Computes `self * w` into `out`, dispatching on `w`'s encoding.
    ///
    /// `QMatrix::F32` routes through [`Matrix::matmul_into`] and stays
    /// bit-identical to the reference kernels (including under the
    /// `reference-kernels` feature). The quantized arms dequantize weight
    /// tiles on load; under `reference-kernels` they run a naive
    /// dequantize-and-accumulate triple loop instead of the tiled kernels,
    /// which the drift proptests exercise as the quantized oracle.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_q_into(&self, w: &QMatrix, out: &mut Matrix) {
        match w {
            QMatrix::F32(m) => self.matmul_into(m, out),
            _ => {
                assert_eq!(
                    self.cols(),
                    w.rows(),
                    "matmul_q shape mismatch: {}x{} * {}x{}",
                    self.rows(),
                    self.cols(),
                    w.rows(),
                    w.cols()
                );
                assert_eq!(
                    out.shape(),
                    (self.rows(), w.cols()),
                    "matmul_q output shape mismatch"
                );
                let (m, k, n) = (self.rows(), self.cols(), w.cols());
                out.data_mut().fill(0.0);
                match w {
                    QMatrix::F16 { data, .. } => {
                        qgemm_f16(m, k, n, self.data(), data, out.data_mut())
                    }
                    QMatrix::Int8 { scales, data, .. } => {
                        qgemm_i8(m, k, n, self.data(), scales, data, out.data_mut())
                    }
                    QMatrix::F32(_) => unreachable!("handled above"),
                }
            }
        }
    }
}

/// Dispatches the int8 kernel: AVX2+FMA, then AVX2, then scalar.
fn qgemm_i8(m: usize, k: usize, n: usize, a: &[f32], scales: &[f32], q: &[i8], out: &mut [f32]) {
    if cfg!(feature = "reference-kernels") {
        return reference_qgemm(m, k, n, a, out, |p, j| scales[p] * q[p * n + j] as f32);
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: guarded by the runtime AVX2+FMA check; no other
            // preconditions.
            return unsafe { qavx::qgemm_i8_fma(m, k, n, a, scales, q, out) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check.
            return unsafe { qavx::qgemm_i8(m, k, n, a, scales, q, out) };
        }
    }
    kernel_qi8::<false, false>(m, k, n, a, scales, q, out);
}

/// Dispatches the f16 kernel like [`qgemm_i8`], with one extra tier: when
/// the host also has F16C, the tile dequant uses the hardware `vcvtph2ps`
/// converter instead of the scalar multiply trick (which both costs more
/// instructions per weight and can hit subnormal-multiply stalls on the
/// smallest trained weights).
fn qgemm_f16(m: usize, k: usize, n: usize, a: &[f32], h: &[u16], out: &mut [f32]) {
    if cfg!(feature = "reference-kernels") {
        return reference_qgemm(m, k, n, a, out, |p, j| f16_to_f32(h[p * n + j]));
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            if std::arch::is_x86_feature_detected!("f16c") {
                // SAFETY: guarded by the runtime AVX2+FMA+F16C check.
                return unsafe { qavx::qgemm_f16_fma_f16c(m, k, n, a, h, out) };
            }
            // SAFETY: guarded by the runtime AVX2+FMA check; no other
            // preconditions.
            return unsafe { qavx::qgemm_f16_fma(m, k, n, a, h, out) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check.
            return unsafe { qavx::qgemm_f16(m, k, n, a, h, out) };
        }
    }
    kernel_qf16::<false, false>(m, k, n, a, h, out);
}

/// Naive dequantize-and-accumulate oracle: ascending `p`, one chain per
/// output element — the quantized counterpart of `crate::reference::matmul`.
fn reference_qgemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    out: &mut [f32],
    deq: impl Fn(usize, usize) -> f32,
) {
    for i in 0..m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += a_ip * deq(p, j);
            }
        }
    }
}

/// Target-feature clones of the quantized kernels. The `_fma` variants are
/// the only place in the workspace where `mul_add` is allowed: under
/// `avx2,fma` it compiles to hardware `vfmadd`, and the quantized path's
/// drift bound absorbs the (smaller) fused rounding.
#[cfg(target_arch = "x86_64")]
mod qavx {
    use super::{kernel_qf16, kernel_qi8};

    #[target_feature(enable = "avx2,fma")]
    pub fn qgemm_i8_fma(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        scales: &[f32],
        q: &[i8],
        out: &mut [f32],
    ) {
        kernel_qi8::<true, true>(m, k, n, a, scales, q, out);
    }

    #[target_feature(enable = "avx2")]
    pub fn qgemm_i8(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        scales: &[f32],
        q: &[i8],
        out: &mut [f32],
    ) {
        kernel_qi8::<false, true>(m, k, n, a, scales, q, out);
    }

    #[target_feature(enable = "avx2,fma,f16c")]
    pub fn qgemm_f16_fma_f16c(m: usize, k: usize, n: usize, a: &[f32], h: &[u16], out: &mut [f32]) {
        kernel_qf16::<true, true>(m, k, n, a, h, out);
    }

    #[target_feature(enable = "avx2,fma")]
    pub fn qgemm_f16_fma(m: usize, k: usize, n: usize, a: &[f32], h: &[u16], out: &mut [f32]) {
        kernel_qf16::<true, false>(m, k, n, a, h, out);
    }

    #[target_feature(enable = "avx2")]
    pub fn qgemm_f16(m: usize, k: usize, n: usize, a: &[f32], h: &[u16], out: &mut [f32]) {
        kernel_qf16::<false, false>(m, k, n, a, h, out);
    }
}

/// Fused multiply-accumulate selected at monomorphization time: the `FMA`
/// instantiation lives only inside `avx2,fma` target-feature wrappers where
/// `mul_add` is a single instruction; everywhere else the plain
/// multiply-then-add keeps the kernel fast without calling libm `fmaf`.
#[inline(always)]
fn acc_step<const FMA: bool>(acc: f32, a: f32, b: f32) -> f32 {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Dequantizes one `QNR`-wide packed-int8 tile row into `bv` with the
/// row's scale broadcast.
///
/// The `AVX` instantiation widens through `vpmovsxbd`/`vcvtdq2ps` and one
/// `vmulps`; the fallback is the scalar loop. Both are bit-identical: the
/// int widenings are exact for `|q| ≤ 127` and each element sees exactly
/// one rounded multiply either way.
#[inline(always)]
fn deq_i8_tile<const AVX: bool>(s: f32, qp: &[i8], bv: &mut [f32; QNR]) {
    #[cfg(target_arch = "x86_64")]
    if AVX {
        // SAFETY: `AVX = true` instantiations are reachable only through
        // the `qavx` wrappers, whose dispatch is gated on a runtime AVX2
        // check; `qp` spans QNR bytes and `bv` QNR floats.
        unsafe {
            use std::arch::x86_64::{
                _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_mul_ps, _mm256_set1_ps,
                _mm256_storeu_ps, _mm_loadl_epi64,
            };
            let sv = _mm256_set1_ps(s);
            for t in 0..QNR / 8 {
                let q32 = _mm256_cvtepi8_epi32(_mm_loadl_epi64(qp.as_ptr().add(t * 8).cast()));
                let f = _mm256_mul_ps(_mm256_cvtepi32_ps(q32), sv);
                _mm256_storeu_ps(bv.as_mut_ptr().add(t * 8), f);
            }
        }
        return;
    }
    for (b, &qv) in bv.iter_mut().zip(qp) {
        *b = s * qv as f32;
    }
}

/// `out += a · dequant(q)` with per-row int8 scales. `out` zeroed by caller.
#[inline(always)]
fn kernel_qi8<const FMA: bool, const AVX: bool>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    scales: &[f32],
    q: &[i8],
    out: &mut [f32],
) {
    let mut i = 0;
    while i + QMR <= m {
        let mut j = 0;
        while j + QNR <= n {
            let mut acc = [[0.0f32; QNR]; QMR];
            for p in 0..k {
                let s = scales[p];
                let qp = &q[p * n + j..p * n + j + QNR];
                let mut bv = [0.0f32; QNR];
                deq_i8_tile::<AVX>(s, qp, &mut bv);
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a_rp = a[(i + r) * k + p];
                    for (av, &b) in acc_r.iter_mut().zip(&bv) {
                        *av = acc_step::<FMA>(*av, a_rp, b);
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + QNR].copy_from_slice(acc_r);
            }
            j += QNR;
        }
        if j < n {
            for p in 0..k {
                let s = scales[p];
                let qp = &q[p * n + j..(p + 1) * n];
                for r in 0..QMR {
                    let a_rp = a[(i + r) * k + p];
                    let or = &mut out[(i + r) * n + j..(i + r + 1) * n];
                    for (o, &qv) in or.iter_mut().zip(qp) {
                        *o = acc_step::<FMA>(*o, a_rp, s * qv as f32);
                    }
                }
            }
        }
        i += QMR;
    }
    while i < m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            let s = scales[p];
            let qp = &q[p * n..(p + 1) * n];
            let or = &mut out[i * n..(i + 1) * n];
            for (o, &qv) in or.iter_mut().zip(qp) {
                *o = acc_step::<FMA>(*o, a_ip, s * qv as f32);
            }
        }
        i += 1;
    }
}

/// Dequantizes one `QNR`-wide packed-f16 tile row into `bv`.
///
/// The `F16C` instantiation converts through hardware `vcvtph2ps`; the
/// fallback runs the scalar multiply trick. Both produce identical bits —
/// f16→f32 widening is exact in either implementation — so the dispatch
/// tiers differ only in speed, never output. The scalar trick pays per
/// weight (shift, classify, multiply) and its subnormal-range multiplies
/// can stall; the hardware converter does 8 lanes per instruction.
#[inline(always)]
fn deq_f16_tile<const F16C: bool>(hp: &[u16], bv: &mut [f32; QNR]) {
    #[cfg(target_arch = "x86_64")]
    if F16C {
        // SAFETY: the `F16C = true` instantiation is reachable only through
        // `qavx::qgemm_f16_fma_f16c`, whose dispatch is gated on a runtime
        // F16C check; `hp` spans QNR half-words and `bv` QNR floats.
        unsafe {
            use std::arch::x86_64::{_mm256_cvtph_ps, _mm256_storeu_ps, _mm_loadu_si128};
            for t in 0..QNR / 8 {
                let v = _mm256_cvtph_ps(_mm_loadu_si128(hp.as_ptr().add(t * 8).cast()));
                _mm256_storeu_ps(bv.as_mut_ptr().add(t * 8), v);
            }
        }
        return;
    }
    for (b, &hv) in bv.iter_mut().zip(hp) {
        *b = f16_to_f32(hv);
    }
}

/// `out += a · dequant(h)` with binary16 weights. `out` zeroed by caller.
#[inline(always)]
fn kernel_qf16<const FMA: bool, const F16C: bool>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    h: &[u16],
    out: &mut [f32],
) {
    let mut i = 0;
    while i + QMR <= m {
        let mut j = 0;
        while j + QNR <= n {
            let mut acc = [[0.0f32; QNR]; QMR];
            for p in 0..k {
                let hp = &h[p * n + j..p * n + j + QNR];
                let mut bv = [0.0f32; QNR];
                deq_f16_tile::<F16C>(hp, &mut bv);
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a_rp = a[(i + r) * k + p];
                    for (av, &b) in acc_r.iter_mut().zip(&bv) {
                        *av = acc_step::<FMA>(*av, a_rp, b);
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + QNR].copy_from_slice(acc_r);
            }
            j += QNR;
        }
        if j < n {
            for p in 0..k {
                let hp = &h[p * n + j..(p + 1) * n];
                for r in 0..QMR {
                    let a_rp = a[(i + r) * k + p];
                    let or = &mut out[(i + r) * n + j..(i + r + 1) * n];
                    for (o, &hv) in or.iter_mut().zip(hp) {
                        *o = acc_step::<FMA>(*o, a_rp, f16_to_f32(hv));
                    }
                }
            }
        }
        i += QMR;
    }
    while i < m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            let hp = &h[p * n..(p + 1) * n];
            let or = &mut out[i * n..(i + 1) * n];
            for (o, &hv) in or.iter_mut().zip(hp) {
                *o = acc_step::<FMA>(*o, a_ip, f16_to_f32(hv));
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn f16_roundtrips_exact_values() {
        for x in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            65504.0,
            2.0f32.powi(-14),
            2.0f32.powi(-24),
        ] {
            let h = f32_to_f16(x);
            assert_eq!(f16_to_f32(h), x, "{x} through bits {h:#06x}");
        }
        // Sign of zero survives.
        assert!(f16_to_f32(f32_to_f16(-0.0)).is_sign_negative());
    }

    #[test]
    fn f16_rounds_to_nearest_even_and_saturates() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties to
        // even keeps 1.0. Slightly above rounds up.
        assert_eq!(f16_to_f32(f32_to_f16(1.0 + 2.0f32.powi(-11))), 1.0);
        let up = f16_to_f32(f32_to_f16(1.0 + 1.5 * 2.0f32.powi(-11)));
        assert!((up - (1.0 + 2.0f32.powi(-10))).abs() < 1e-7);
        // Overflow saturates to max finite, never Inf.
        assert_eq!(f16_to_f32(f32_to_f16(1e9)), 65504.0);
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), 65504.0);
        assert_eq!(f16_to_f32(f32_to_f16(-1e9)), -65504.0);
    }

    #[test]
    fn f16_error_within_half_ulp_over_random_floats() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20_000 {
            let x: f32 = rng.gen_range(-100.0..100.0);
            let y = f16_to_f32(f32_to_f16(x));
            let bound = (x.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-25));
            assert!((x - y).abs() <= bound, "{x} -> {y}");
        }
    }

    #[test]
    fn int8_reconstruction_within_half_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::uniform(13, 37, 2.5, &mut rng);
        let q = QMatrix::quantize(&m, QuantMode::Int8).expect("finite");
        let deq = q.dequantize();
        for r in 0..13 {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let scale = max_abs / 127.0;
            for (a, b) in m.row(r).iter().zip(deq.row(r)) {
                assert!((a - b).abs() <= scale / 2.0 + 1e-7, "row {r}: {a} vs {b}");
            }
        }
        assert!(q.max_abs_error(&m) <= 2.5 / 127.0 / 2.0 + 1e-6);
    }

    #[test]
    fn quantize_rejects_non_finite() {
        let m = Matrix::from_vec(1, 2, vec![1.0, f32::NAN]);
        assert!(matches!(
            QMatrix::quantize(&m, QuantMode::Int8),
            Err(NnError::NonFiniteWeight)
        ));
        assert!(matches!(
            QMatrix::quantize(&m, QuantMode::F16),
            Err(NnError::NonFiniteWeight)
        ));
    }

    #[test]
    fn f32_serde_is_plain_matrix() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let q = QMatrix::F32(m.clone());
        assert_eq!(
            q.to_content(),
            m.to_content(),
            "byte-compatible with Matrix"
        );
        // And a bare Matrix tree parses as the F32 arm.
        let back = QMatrix::from_content(&m.to_content()).expect("parse");
        assert_eq!(back, q);
    }

    #[test]
    fn quantized_serde_roundtrips_and_validates() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Matrix::uniform(4, 6, 1.0, &mut rng);
        for mode in [QuantMode::F16, QuantMode::Int8] {
            let q = QMatrix::quantize(&m, mode).expect("finite");
            let back = QMatrix::from_content(&q.to_content()).expect("roundtrip");
            assert_eq!(back, q, "{mode}");
        }
        // Length mismatches are rejected, not trusted.
        let bad = Content::Map(vec![
            ("rows".into(), 2usize.to_content()),
            ("cols".into(), 3usize.to_content()),
            ("f16".into(), vec![0u16; 5].to_content()),
        ]);
        assert!(QMatrix::from_content(&bad).is_err());
        let bad = Content::Map(vec![
            ("rows".into(), 2usize.to_content()),
            ("cols".into(), 2usize.to_content()),
            ("scales".into(), vec![1.0f32; 3].to_content()),
            ("i8".into(), vec![0i8; 4].to_content()),
        ]);
        assert!(QMatrix::from_content(&bad).is_err());
        // Non-finite f16 bit patterns (would decode silently wrong) error.
        let inf = Content::Map(vec![
            ("rows".into(), 1usize.to_content()),
            ("cols".into(), 1usize.to_content()),
            ("f16".into(), vec![0x7c00u16].to_content()),
        ]);
        assert!(QMatrix::from_content(&inf).is_err());
    }

    #[test]
    fn f32_arm_matmul_is_bit_identical_to_matmul_into() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::uniform(5, 17, 1.0, &mut rng);
        let w = Matrix::uniform(17, 35, 1.0, &mut rng);
        let mut exact = Matrix::zeros(5, 35);
        a.matmul_into(&w, &mut exact);
        let mut q_out = Matrix::zeros(5, 35);
        a.matmul_q_into(&QMatrix::F32(w), &mut q_out);
        assert_eq!(exact, q_out);
    }

    #[test]
    fn quantized_matmul_matches_dequantized_f32_within_bound() {
        let mut rng = StdRng::seed_from_u64(21);
        // Shapes straddling the 4x32 tile edges.
        for &(m, k, n) in &[(1, 3, 5), (4, 16, 32), (5, 33, 37), (9, 8, 64), (3, 1, 1)] {
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let w = Matrix::uniform(k, n, 1.0, &mut rng);
            for mode in [QuantMode::F16, QuantMode::Int8] {
                let q = QMatrix::quantize(&w, mode).expect("finite");
                let deq = q.dequantize();
                let mut want = Matrix::zeros(m, n);
                a.matmul_into(&deq, &mut want);
                let mut got = Matrix::zeros(m, n);
                a.matmul_q_into(&q, &mut got);
                for (x, y) in got.data().iter().zip(want.data()) {
                    // Same products, possibly fused rounding: tiny budget.
                    assert!((x - y).abs() <= 1e-4 * k as f32, "{mode} {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn quantized_matmul_is_batch_invariant() {
        // Decoding row r of a batch must produce the same bits as decoding
        // it alone — cross-session batching in serving relies on this.
        let mut rng = StdRng::seed_from_u64(33);
        let a = Matrix::uniform(7, 19, 1.0, &mut rng);
        let w = Matrix::uniform(19, 41, 1.0, &mut rng);
        for mode in [QuantMode::F16, QuantMode::Int8] {
            let q = QMatrix::quantize(&w, mode).expect("finite");
            let mut full = Matrix::zeros(7, 41);
            a.matmul_q_into(&q, &mut full);
            for r in 0..7 {
                let single = Matrix::from_vec(1, 19, a.row(r).to_vec());
                let mut one = Matrix::zeros(1, 41);
                single.matmul_q_into(&q, &mut one);
                assert_eq!(one.row(0), full.row(r), "{mode} row {r}");
            }
        }
    }

    #[test]
    fn approx_bytes_shrink_with_mode() {
        let m = Matrix::zeros(64, 64);
        let f32b = QMatrix::F32(m.clone()).approx_bytes();
        let f16b = QMatrix::quantize(&m, QuantMode::F16)
            .unwrap()
            .approx_bytes();
        let i8b = QMatrix::quantize(&m, QuantMode::Int8)
            .unwrap()
            .approx_bytes();
        assert_eq!(f16b * 2, f32b);
        assert!(i8b * 2 < f32b, "{i8b} vs {f32b}");
    }
}
