//! Long Short-Term Memory layers on top of the autodiff [`Tape`].
//!
//! An [`LstmLayer`] owns parameter *slots* inside a shared [`ParamSet`]; at
//! forward time the caller binds those slots onto a tape once per pass
//! ([`LstmLayer::bind`]) and then advances the recurrence step by step.

use crate::matrix::Matrix;
use crate::tape::{ParamSet, Tape, TensorId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameter slots of a single LSTM layer (input, hidden and bias weights for
/// the four gates, laid out as `[i | f | g | o]` along the columns).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmLayer {
    wx: usize,
    wh: usize,
    b: usize,
    input: usize,
    hidden: usize,
}

/// Tape-bound handles to an [`LstmLayer`]'s parameters, valid for one tape.
///
/// Binding pre-concatenates `wx` (on top of) `wh` into one packed
/// `(input + hidden) x 4H` operand so [`BoundLstm::step`] issues a single
/// GEMM per step instead of two; gradients flow back through the
/// concatenation to the original parameter slots.
#[derive(Clone, Copy, Debug)]
pub struct BoundLstm {
    /// Packed `[wx; wh]`, the fused-gate GEMM operand.
    w: TensorId,
    wx: TensorId,
    wh: TensorId,
    b: TensorId,
    hidden: usize,
}

/// Recurrent state `(h, c)` of one LSTM layer on a tape.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    /// Hidden state, `B x H`.
    pub h: TensorId,
    /// Cell state, `B x H`.
    pub c: TensorId,
}

impl LstmLayer {
    /// Allocates parameters for a layer mapping `input` features to `hidden`
    /// units inside `params`. The forget-gate bias is initialized to `1.0`
    /// (the standard trick to ease gradient flow early in training).
    pub fn new(params: &mut ParamSet, input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let wx = params.add(Matrix::xavier(input, 4 * hidden, rng));
        let wh = params.add(Matrix::xavier(hidden, 4 * hidden, rng));
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0);
        }
        let b = params.add(bias);
        Self {
            wx,
            wh,
            b,
            input,
            hidden,
        }
    }

    /// Input feature count.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Hidden unit count.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Binds the layer parameters onto `tape` (once per forward pass),
    /// packing the input and hidden weights into one fused-gate operand.
    pub fn bind(&self, tape: &mut Tape, params: &ParamSet) -> BoundLstm {
        let wx = tape.param(params, self.wx);
        let wh = tape.param(params, self.wh);
        BoundLstm {
            w: tape.concat_rows(wx, wh),
            wx,
            wh,
            b: tape.param(params, self.b),
            hidden: self.hidden,
        }
    }

    /// Creates a zero initial state for a batch of `batch` rows.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> LstmState {
        LstmState {
            h: tape.leaf(Matrix::zeros(batch, self.hidden)),
            c: tape.leaf(Matrix::zeros(batch, self.hidden)),
        }
    }

    /// Packs the layer weights for the tape-free inference engine: the same
    /// fused `[wx; wh]` gate operand [`LstmLayer::bind`] builds on a tape,
    /// copied out of `params` once instead of per forward pass.
    pub fn pack_infer(&self, params: &ParamSet) -> crate::infer::PackedCell {
        crate::infer::PackedCell::Lstm {
            w: crate::QMatrix::F32(crate::infer::pack_rows(
                params.value(self.wx),
                params.value(self.wh),
            )),
            b: params.value(self.b).clone(),
            hidden: self.hidden,
        }
    }
}

impl BoundLstm {
    /// Advances the recurrence one step: consumes input `x` (`B x input`) and
    /// the previous state, returning the next state.
    ///
    /// Uses the fused gate path: one GEMM of `[x | h]` against the packed
    /// `[wx; wh]` operand. The result can differ from [`BoundLstm::step_unfused`]
    /// by floating-point rounding only (the products are summed in a
    /// different order), bounded well below `1e-5` for realistic magnitudes.
    pub fn step(&self, tape: &mut Tape, x: TensorId, state: LstmState) -> LstmState {
        let xh = tape.concat_cols(x, state.h);
        let z = tape.matmul(xh, self.w);
        let z = tape.add_row(z, self.b);
        self.finish_step(tape, z, state)
    }

    /// The original two-GEMM step (`x * wx + h * wh`), kept as the oracle for
    /// the fused path's parity tests and benches.
    pub fn step_unfused(&self, tape: &mut Tape, x: TensorId, state: LstmState) -> LstmState {
        let zx = tape.matmul(x, self.wx);
        let zh = tape.matmul(state.h, self.wh);
        let z = tape.add(zx, zh);
        let z = tape.add_row(z, self.b);
        self.finish_step(tape, z, state)
    }

    /// Gate nonlinearities and state update shared by both step variants.
    fn finish_step(&self, tape: &mut Tape, z: TensorId, state: LstmState) -> LstmState {
        let h = self.hidden;
        let i_pre = tape.slice_cols(z, 0, h);
        let f_pre = tape.slice_cols(z, h, h);
        let g_pre = tape.slice_cols(z, 2 * h, h);
        let o_pre = tape.slice_cols(z, 3 * h, h);
        let i = tape.sigmoid(i_pre);
        let f = tape.sigmoid(f_pre);
        let g = tape.tanh(g_pre);
        let o = tape.sigmoid(o_pre);
        let fc = tape.hadamard(f, state.c);
        let ig = tape.hadamard(i, g);
        let c = tape.add(fc, ig);
        let tc = tape.tanh(c);
        let h_out = tape.hadamard(o, tc);
        LstmState { h: h_out, c }
    }
}

/// A stack of LSTM layers; layer `l + 1` consumes the hidden states of layer
/// `l`, with optional inter-layer dropout during training.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmStack {
    layers: Vec<LstmLayer>,
}

/// Tape-bound handles for an [`LstmStack`].
#[derive(Clone, Debug)]
pub struct BoundStack {
    layers: Vec<BoundLstm>,
}

impl LstmStack {
    /// Allocates `n_layers` layers, the first consuming `input` features and
    /// the rest consuming `hidden`.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0`.
    pub fn new(
        params: &mut ParamSet,
        input: usize,
        hidden: usize,
        n_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_layers > 0, "LstmStack requires at least one layer");
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let in_dim = if l == 0 { input } else { hidden };
            layers.push(LstmLayer::new(params, in_dim, hidden, rng));
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty (never true for a constructed stack).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Binds all layers onto `tape`.
    pub fn bind(&self, tape: &mut Tape, params: &ParamSet) -> BoundStack {
        BoundStack {
            layers: self.layers.iter().map(|l| l.bind(tape, params)).collect(),
        }
    }

    /// Zero state for every layer.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> Vec<LstmState> {
        self.layers
            .iter()
            .map(|l| l.zero_state(tape, batch))
            .collect()
    }

    /// Packs every layer for the tape-free inference engine, bottom first.
    pub fn pack_infer(&self, params: &ParamSet) -> Vec<crate::infer::PackedCell> {
        self.layers.iter().map(|l| l.pack_infer(params)).collect()
    }
}

impl BoundStack {
    /// Advances every layer one step. `dropout` (with the given rng) is
    /// applied between layers when `Some`; pass `None` at inference.
    ///
    /// Returns the new per-layer states; the top layer's `h` is the stack
    /// output.
    pub fn step(
        &self,
        tape: &mut Tape,
        x: TensorId,
        states: &[LstmState],
        dropout: Option<(f32, &mut dyn FnMut() -> f32)>,
    ) -> Vec<LstmState> {
        debug_assert_eq!(states.len(), self.layers.len());
        let mut out = Vec::with_capacity(self.layers.len());
        let mut input = x;
        let mut drop = dropout;
        for (l, layer) in self.layers.iter().enumerate() {
            let next = layer.step(tape, input, states[l]);
            input = next.h;
            if l + 1 < self.layers.len() {
                if let Some((p, sampler)) = drop.as_mut() {
                    input = apply_dropout(tape, input, *p, sampler);
                }
            }
            out.push(next);
        }
        out
    }
}

/// Dropout that draws uniforms from a boxed sampler (used so `BoundStack` can
/// stay object-safe with respect to the RNG).
fn apply_dropout(
    tape: &mut Tape,
    x: TensorId,
    p: f32,
    sampler: &mut dyn FnMut() -> f32,
) -> TensorId {
    if p == 0.0 {
        return x;
    }
    struct FnRng<'a>(&'a mut dyn FnMut() -> f32);
    impl rand::RngCore for FnRng<'_> {
        fn next_u32(&mut self) -> u32 {
            ((self.0)() * u32::MAX as f32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            (self.next_u32() as u64) << 32 | self.next_u32() as u64
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = (self.next_u32() & 0xff) as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
    let mut rng = FnRng(sampler);
    tape.dropout(x, p, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lstm_step_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let layer = LstmLayer::new(&mut params, 3, 4, &mut rng);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let state = layer.zero_state(&mut tape, 2);
        let x = tape.leaf(Matrix::uniform(2, 3, 1.0, &mut rng));
        let next = bound.step(&mut tape, x, state);
        assert_eq!(tape.value(next.h).shape(), (2, 4));
        assert_eq!(tape.value(next.c).shape(), (2, 4));
    }

    #[test]
    fn lstm_hidden_values_bounded() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = ParamSet::new();
        let layer = LstmLayer::new(&mut params, 2, 3, &mut rng);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let mut state = layer.zero_state(&mut tape, 1);
        for _ in 0..50 {
            let x = tape.leaf(Matrix::uniform(1, 2, 10.0, &mut rng));
            state = bound.step(&mut tape, x, state);
        }
        // h = o * tanh(c) is always within (-1, 1).
        for &v in tape.value(state.h).data() {
            assert!(v.abs() < 1.0);
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = ParamSet::new();
        let layer = LstmLayer::new(&mut params, 2, 3, &mut rng);
        let bias = params.value(2); // wx, wh, b
        for c in 0..12 {
            let expect = if (3..6).contains(&c) { 1.0 } else { 0.0 };
            assert_eq!(bias.get(0, c), expect);
        }
        assert_eq!(layer.hidden(), 3);
    }

    #[test]
    fn stack_runs_and_differs_from_single_layer() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = ParamSet::new();
        let stack = LstmStack::new(&mut params, 2, 3, 2, &mut rng);
        assert_eq!(stack.len(), 2);
        let mut tape = Tape::new();
        let bound = stack.bind(&mut tape, &params);
        let states = stack.zero_state(&mut tape, 1);
        let x = tape.leaf(Matrix::uniform(1, 2, 1.0, &mut rng));
        let next = bound.step(&mut tape, x, &states, None);
        assert_eq!(next.len(), 2);
        assert_eq!(tape.value(next[1].h).shape(), (1, 3));
    }

    #[test]
    fn lstm_gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut params = ParamSet::new();
        let layer = LstmLayer::new(&mut params, 2, 3, &mut rng);
        let out_w = params.add(Matrix::xavier(3, 2, &mut rng));
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let w = tape.param(&params, out_w);
        let mut state = layer.zero_state(&mut tape, 1);
        for _ in 0..4 {
            let x = tape.leaf(Matrix::uniform(1, 2, 1.0, &mut rng));
            state = bound.step(&mut tape, x, state);
        }
        let logits = tape.matmul(state.h, w);
        let loss = tape.cross_entropy(logits, &[0]);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, &mut params);
        // All LSTM parameters should receive a nonzero gradient.
        for p in 0..3 {
            assert!(params.grad(p).norm_sq() > 0.0, "param {p} has zero grad");
        }
    }
}
