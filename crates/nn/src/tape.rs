//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation applied to [`TensorId`] handles. Values
//! are computed eagerly during the forward pass; [`Tape::backward`] then walks
//! the recorded nodes in reverse, producing gradients for every node.
//! Parameters live outside the tape in a [`ParamSet`] so the tape can be
//! discarded and rebuilt every training step.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

/// A set of trainable parameters, addressed by the index returned from
/// [`ParamSet::add`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamSet {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its slot index.
    pub fn add(&mut self, value: Matrix) -> usize {
        let (r, c) = value.shape();
        self.values.push(value);
        self.grads.push(Matrix::zeros(r, c));
        self.values.len() - 1
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set contains no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable access to a parameter value.
    pub fn value(&self, idx: usize) -> &Matrix {
        &self.values[idx]
    }

    /// Mutable access to a parameter value.
    pub fn value_mut(&mut self, idx: usize) -> &mut Matrix {
        &mut self.values[idx]
    }

    /// Immutable access to a parameter gradient accumulator.
    pub fn grad(&self, idx: usize) -> &Matrix {
        &self.grads[idx]
    }

    /// Mutable access to a parameter gradient accumulator.
    pub fn grad_mut(&mut self, idx: usize) -> &mut Matrix {
        &mut self.grads[idx]
    }

    /// Resets all gradient accumulators to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            *g = Matrix::zeros(g.rows(), g.cols());
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(Matrix::norm_sq).sum::<f32>().sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grads(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
        norm
    }
}

enum Op {
    /// Constant input; no gradient flows past it.
    Leaf,
    /// Parameter from a [`ParamSet`] slot; gradient is harvested by
    /// [`Tape::accumulate_param_grads`].
    Param(usize),
    MatMul(TensorId, TensorId),
    Add(TensorId, TensorId),
    AddRow(TensorId, TensorId),
    Hadamard(TensorId, TensorId),
    Scale(TensorId, f32),
    Sigmoid(TensorId),
    Tanh(TensorId),
    Relu(TensorId),
    Softmax(TensorId),
    ConcatCols(TensorId, TensorId),
    SliceCols(TensorId, usize, usize),
    Gather(TensorId, Vec<usize>),
    RowDot(TensorId, TensorId),
    MulCol(TensorId, TensorId),
    Dropout(TensorId, Vec<f32>),
    CrossEntropy { logits: TensorId, targets: Vec<usize>, probs: Matrix },
    MeanOf(Vec<TensorId>),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// The autodiff tape. See the [module documentation](self) for the life cycle.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a recorded node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> TensorId {
        self.nodes.push(Node { value, op });
        TensorId(self.nodes.len() - 1)
    }

    /// Records a constant (non-differentiable) input.
    pub fn leaf(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf)
    }

    /// Records parameter `idx` from `params` as a differentiable leaf.
    pub fn param(&mut self, params: &ParamSet, idx: usize) -> TensorId {
        self.push(params.value(idx).clone(), Op::Param(idx))
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shaped tensors.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Adds a `1 x C` row vector to every row of a `B x C` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x C` for the `B x C` input.
    pub fn add_row(&mut self, a: TensorId, bias: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(bias).shape();
        assert_eq!((br, bc), (1, ac), "add_row bias must be 1x{ac}, got {br}x{bc}");
        let mut v = self.value(a).clone();
        for r in 0..ar {
            let bias_row: Vec<f32> = self.value(bias).row(0).to_vec();
            for (x, b) in v.row_mut(r).iter_mut().zip(bias_row) {
                *x += b;
            }
        }
        self.push(v, Op::AddRow(a, bias))
    }

    /// Element-wise product of two same-shaped tensors.
    pub fn hadamard(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Hadamard(a, b))
    }

    /// Multiplies a tensor by a scalar.
    pub fn scale(&mut self, a: TensorId, s: f32) -> TensorId {
        let v = self.value(a).map(|x| x * s);
        self.push(v, Op::Scale(a, s))
    }

    /// Logistic sigmoid, element-wise.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent, element-wise.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit, element-wise.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).softmax_rows();
        self.push(v, Op::Softmax(a))
    }

    /// Concatenates two tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(ar, br, "concat_cols row mismatch: {ar} vs {br}");
        let mut v = Matrix::zeros(ar, ac + bc);
        for r in 0..ar {
            v.row_mut(r)[..ac].copy_from_slice(self.value(a).row(r));
            v.row_mut(r)[ac..].copy_from_slice(self.value(b).row(r));
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Takes columns `[start, start + len)` of a tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, a: TensorId, start: usize, len: usize) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        assert!(start + len <= ac, "slice_cols [{start}, {}) out of 0..{ac}", start + len);
        let mut v = Matrix::zeros(ar, len);
        for r in 0..ar {
            v.row_mut(r).copy_from_slice(&self.value(a).row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols(a, start, len))
    }

    /// Gathers rows of `src` by index: output row `r` is `src` row
    /// `indices[r]`. The canonical embedding lookup.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&mut self, src: TensorId, indices: &[usize]) -> TensorId {
        let (sr, sc) = self.value(src).shape();
        let mut v = Matrix::zeros(indices.len(), sc);
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < sr, "gather index {i} out of bounds for {sr} rows");
            let src_row: Vec<f32> = self.value(src).row(i).to_vec();
            v.row_mut(r).copy_from_slice(&src_row);
        }
        self.push(v, Op::Gather(src, indices.to_vec()))
    }

    /// Row-wise dot product of two `B x C` tensors producing `B x 1`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn row_dot(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "row_dot shape mismatch");
        let (rows, _) = self.value(a).shape();
        let mut v = Matrix::zeros(rows, 1);
        for r in 0..rows {
            let d: f32 =
                self.value(a).row(r).iter().zip(self.value(b).row(r)).map(|(&x, &y)| x * y).sum();
            v.set(r, 0, d);
        }
        self.push(v, Op::RowDot(a, b))
    }

    /// Multiplies each row of a `B x C` tensor by the matching entry of a
    /// `B x 1` column vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `B x 1`.
    pub fn mul_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let (ar, _) = self.value(a).shape();
        assert_eq!(self.value(col).shape(), (ar, 1), "mul_col expects a {ar}x1 column");
        let mut v = self.value(a).clone();
        for r in 0..ar {
            let s = self.value(col).get(r, 0);
            for x in v.row_mut(r) {
                *x *= s;
            }
        }
        self.push(v, Op::MulCol(a, col))
    }

    /// Inverted dropout: keeps each element with probability `1 - p`, scaling
    /// kept elements by `1 / (1 - p)`. `p == 0` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn dropout(&mut self, a: TensorId, p: f32, rng: &mut impl rand::Rng) -> TensorId {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} must be in [0, 1)");
        if p == 0.0 {
            return a;
        }
        let n = self.value(a).data().len();
        let keep = 1.0 - p;
        let mask: Vec<f32> =
            (0..n).map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 }).collect();
        let (r, c) = self.value(a).shape();
        let data: Vec<f32> =
            self.value(a).data().iter().zip(mask.iter()).map(|(&x, &m)| x * m).collect();
        self.push(Matrix::from_vec(r, c, data), Op::Dropout(a, mask))
    }

    /// Mean cross-entropy loss of row-wise logits against integer targets.
    /// Produces a `1 x 1` scalar node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of logit rows, or a
    /// target is out of vocabulary range.
    pub fn cross_entropy(&mut self, logits: TensorId, targets: &[usize]) -> TensorId {
        let (rows, cols) = self.value(logits).shape();
        assert_eq!(rows, targets.len(), "cross_entropy target count mismatch");
        let probs = self.value(logits).softmax_rows();
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < cols, "cross_entropy target {t} out of vocab {cols}");
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= rows as f32;
        self.push(
            Matrix::from_vec(1, 1, vec![loss]),
            Op::CrossEntropy { logits, targets: targets.to_vec(), probs },
        )
    }

    /// Averages several `1 x 1` scalar nodes into one.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or any node is not `1 x 1`.
    pub fn mean_of(&mut self, ids: &[TensorId]) -> TensorId {
        assert!(!ids.is_empty(), "mean_of needs at least one node");
        let mut acc = 0.0;
        for &id in ids {
            assert_eq!(self.value(id).shape(), (1, 1), "mean_of expects scalar nodes");
            acc += self.value(id).get(0, 0);
        }
        acc /= ids.len() as f32;
        self.push(Matrix::from_vec(1, 1, vec![acc]), Op::MeanOf(ids.to_vec()))
    }

    /// Runs the reverse pass from `loss` (which must be `1 x 1`) and returns
    /// the gradient of every node with respect to the loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar node.
    pub fn backward(&self, loss: TensorId) -> Vec<Option<Matrix>> {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward root must be a 1x1 scalar");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            let g = match &grads[i] {
                Some(g) => g.clone(),
                None => continue,
            };
            match &self.nodes[i].op {
                Op::Leaf | Op::Param(_) => {}
                Op::MatMul(a, b) => {
                    let ga = g.matmul_nt(self.value(*b));
                    let gb = self.value(*a).matmul_tn(&g);
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g);
                }
                Op::AddRow(a, bias) => {
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            gb.set(0, c, gb.get(0, c) + v);
                        }
                    }
                    accumulate(&mut grads, a.0, g);
                    accumulate(&mut grads, bias.0, gb);
                }
                Op::Hadamard(a, b) => {
                    let ga = g.hadamard(self.value(*b));
                    let gb = g.hadamard(self.value(*a));
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Scale(a, s) => {
                    accumulate(&mut grads, a.0, g.map(|x| x * s));
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.hadamard(&y.map(|v| v * (1.0 - v)));
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.hadamard(&y.map(|v| 1.0 - v * v));
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Relu(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.hadamard(&y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Softmax(a) => {
                    let y = &self.nodes[i].value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 =
                            g.row(r).iter().zip(y.row(r)).map(|(&gv, &yv)| gv * yv).sum();
                        for c in 0..y.cols() {
                            ga.set(r, c, (g.get(r, c) - dot) * y.get(r, c));
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.value(*a).cols();
                    let bc = self.value(*b).cols();
                    let rows = g.rows();
                    let mut ga = Matrix::zeros(rows, ac);
                    let mut gb = Matrix::zeros(rows, bc);
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::SliceCols(a, start, len) => {
                    let (ar, ac) = self.value(*a).shape();
                    let mut ga = Matrix::zeros(ar, ac);
                    for r in 0..ar {
                        ga.row_mut(r)[*start..start + len].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Gather(src, indices) => {
                    let (sr, sc) = self.value(*src).shape();
                    let mut gs = Matrix::zeros(sr, sc);
                    for (r, &idx) in indices.iter().enumerate() {
                        for (c, &v) in g.row(r).iter().enumerate() {
                            gs.set(idx, c, gs.get(idx, c) + v);
                        }
                    }
                    accumulate(&mut grads, src.0, gs);
                }
                Op::RowDot(a, b) => {
                    let va = self.value(*a);
                    let vb = self.value(*b);
                    let mut ga = Matrix::zeros(va.rows(), va.cols());
                    let mut gb = Matrix::zeros(vb.rows(), vb.cols());
                    for r in 0..va.rows() {
                        let gr = g.get(r, 0);
                        for c in 0..va.cols() {
                            ga.set(r, c, gr * vb.get(r, c));
                            gb.set(r, c, gr * va.get(r, c));
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::MulCol(a, col) => {
                    let va = self.value(*a);
                    let vc = self.value(*col);
                    let mut ga = Matrix::zeros(va.rows(), va.cols());
                    let mut gc = Matrix::zeros(va.rows(), 1);
                    for r in 0..va.rows() {
                        let s = vc.get(r, 0);
                        let mut dot = 0.0;
                        for c in 0..va.cols() {
                            ga.set(r, c, g.get(r, c) * s);
                            dot += g.get(r, c) * va.get(r, c);
                        }
                        gc.set(r, 0, dot);
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, col.0, gc);
                }
                Op::Dropout(a, mask) => {
                    let (r, c) = g.shape();
                    let data: Vec<f32> =
                        g.data().iter().zip(mask.iter()).map(|(&gv, &m)| gv * m).collect();
                    accumulate(&mut grads, a.0, Matrix::from_vec(r, c, data));
                }
                Op::CrossEntropy { logits, targets, probs } => {
                    let scale = g.get(0, 0) / targets.len() as f32;
                    let mut gl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, t, gl.get(r, t) - 1.0);
                    }
                    gl.scale_assign(scale);
                    accumulate(&mut grads, logits.0, gl);
                }
                Op::MeanOf(ids) => {
                    let share = g.get(0, 0) / ids.len() as f32;
                    for id in ids {
                        accumulate(&mut grads, id.0, Matrix::from_vec(1, 1, vec![share]));
                    }
                }
            }
        }
        grads
    }

    /// Adds the gradients of every `Param` node recorded on this tape into the
    /// matching [`ParamSet`] accumulators.
    pub fn accumulate_param_grads(&self, grads: &[Option<Matrix>], params: &mut ParamSet) {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Op::Param(idx) = node.op {
                if let Some(g) = &grads[i] {
                    params.grad_mut(idx).add_assign(g);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, g: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check: builds the loss with `f` twice per
    /// perturbed parameter element and compares against the tape gradient.
    fn grad_check(params: &mut ParamSet, f: impl Fn(&mut Tape, &ParamSet) -> TensorId) {
        let mut tape = Tape::new();
        let loss = f(&mut tape, params);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, params);

        let eps = 1e-2f32;
        for p in 0..params.len() {
            let (rows, cols) = params.value(p).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = params.value(p).get(r, c);
                    params.value_mut(p).set(r, c, orig + eps);
                    let mut t1 = Tape::new();
                    let l1 = f(&mut t1, params);
                    let up = t1.value(l1).get(0, 0);
                    params.value_mut(p).set(r, c, orig - eps);
                    let mut t2 = Tape::new();
                    let l2 = f(&mut t2, params);
                    let down = t2.value(l2).get(0, 0);
                    params.value_mut(p).set(r, c, orig);

                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = params.grad(p).get(r, c);
                    let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                    assert!(
                        (numeric - analytic).abs() / denom < 5e-2,
                        "param {p} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut params = ParamSet::new();
        let w1 = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        let w2 = params.add(Matrix::uniform(4, 2, 0.5, &mut rng));
        let x = Matrix::uniform(2, 3, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let xi = t.leaf(x.clone());
            let a = t.param(p, w1);
            let b = t.param(p, w2);
            let h = t.matmul(xi, a);
            let h = t.tanh(h);
            let logits = t.matmul(h, b);
            t.cross_entropy(logits, &[0, 1])
        });
    }

    #[test]
    fn gradcheck_gates_and_bias() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut params = ParamSet::new();
        let w = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        let b = params.add(Matrix::uniform(1, 4, 0.5, &mut rng));
        let x = Matrix::uniform(2, 3, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let xi = t.leaf(x.clone());
            let wi = t.param(p, w);
            let bi = t.param(p, b);
            let z = t.matmul(xi, wi);
            let z = t.add_row(z, bi);
            let i = t.slice_cols(z, 0, 2);
            let j = t.slice_cols(z, 2, 2);
            let i = t.sigmoid(i);
            let j = t.tanh(j);
            let h = t.hadamard(i, j);
            t.cross_entropy(h, &[1, 0])
        });
    }

    #[test]
    fn gradcheck_attention_ops() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut params = ParamSet::new();
        let w = params.add(Matrix::uniform(2, 3, 0.5, &mut rng));
        let q = Matrix::uniform(2, 3, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let wi = t.param(p, w);
            let keys = t.leaf(Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.3]));
            // Project the 2x2 identity through w to get 2x3 "queries".
            let eye = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
            let qs = t.matmul(eye, wi);
            let qfixed = t.leaf(q.clone());
            let qs = t.add(qs, qfixed);
            let s1 = t.row_dot(qs, keys);
            let weights = t.softmax(s1);
            let ctx = t.mul_col(keys, weights);
            let both = t.concat_cols(ctx, qs);
            let both = t.tanh(both);
            let sum = t.slice_cols(both, 0, 2);
            t.cross_entropy(sum, &[0, 1])
        });
    }

    #[test]
    fn gradcheck_gather_embedding() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut params = ParamSet::new();
        let emb = params.add(Matrix::uniform(5, 3, 0.5, &mut rng));
        let proj = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        grad_check(&mut params, move |t, p| {
            let e = t.param(p, emb);
            let w = t.param(p, proj);
            let x = t.gather(e, &[1, 3, 1]);
            let logits = t.matmul(x, w);
            t.cross_entropy(logits, &[0, 2, 3])
        });
    }

    #[test]
    fn gradcheck_mean_of_losses() {
        let mut rng = StdRng::seed_from_u64(46);
        let mut params = ParamSet::new();
        let w = params.add(Matrix::uniform(2, 3, 0.5, &mut rng));
        let x = Matrix::uniform(2, 2, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let wi = t.param(p, w);
            let xi = t.leaf(x.clone());
            let l1_in = t.matmul(xi, wi);
            let l1 = t.cross_entropy(l1_in, &[0, 1]);
            let scaled = t.scale(l1_in, 0.5);
            let l2 = t.cross_entropy(scaled, &[2, 0]);
            t.mean_of(&[l1, l2])
        });
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let b = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn dropout_scales_kept_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::filled(1, 1000, 1.0));
        let b = tape.dropout(a, 0.5, &mut rng);
        let mean: f32 = tape.value(b).data().iter().sum::<f32>() / 1000.0;
        // Inverted dropout preserves the expectation.
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
        for &v in tape.value(b).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn clip_grads_caps_norm() {
        let mut params = ParamSet::new();
        let p = params.add(Matrix::zeros(1, 2));
        *params.grad_mut(p) = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let pre = params.clip_grads(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((params.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let loss = tape.cross_entropy(logits, &[0]);
        // Uniform distribution over 2 classes => loss = ln 2.
        assert!((tape.value(loss).get(0, 0) - 2.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backward root must be a 1x1 scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::zeros(2, 2));
        let _ = tape.backward(a);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Randomized gradient check: a two-layer network with random shapes and
    /// random activation choices must match finite differences.
    fn check_random_net(seed: u64, b: usize, d_in: usize, d_h: usize, d_out: usize, act: u8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let w1 = params.add(Matrix::uniform(d_in, d_h, 0.5, &mut rng));
        let b1 = params.add(Matrix::uniform(1, d_h, 0.5, &mut rng));
        let w2 = params.add(Matrix::uniform(d_h, d_out, 0.5, &mut rng));
        let x = Matrix::uniform(b, d_in, 0.5, &mut rng);
        let targets: Vec<usize> = (0..b).map(|i| i % d_out).collect();

        let forward = |tape: &mut Tape, params: &ParamSet| {
            let xi = tape.leaf(x.clone());
            let w1i = tape.param(params, w1);
            let b1i = tape.param(params, b1);
            let w2i = tape.param(params, w2);
            let h = tape.matmul(xi, w1i);
            let h = tape.add_row(h, b1i);
            let h = match act {
                0 => tape.tanh(h),
                1 => tape.sigmoid(h),
                _ => {
                    // Softmax keeps values near the interior, away from the
                    // relu kink, so finite differences stay valid.
                    tape.softmax(h)
                }
            };
            let logits = tape.matmul(h, w2i);
            tape.cross_entropy(logits, &targets)
        };

        let mut tape = Tape::new();
        let loss = forward(&mut tape, &params);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, &mut params);

        let eps = 1e-2f32;
        for p in 0..params.len() {
            let (rows, cols) = params.value(p).shape();
            // Spot-check a handful of coordinates to keep runtime bounded.
            for (r, c) in [(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let orig = params.value(p).get(r, c);
                params.value_mut(p).set(r, c, orig + eps);
                let mut t1 = Tape::new();
                let l1 = forward(&mut t1, &params);
                let up = t1.value(l1).get(0, 0);
                params.value_mut(p).set(r, c, orig - eps);
                let mut t2 = Tape::new();
                let l2 = forward(&mut t2, &params);
                let down = t2.value(l2).get(0, 0);
                params.value_mut(p).set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                let analytic = params.grad(p).get(r, c);
                let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                assert!(
                    (numeric - analytic).abs() / denom < 6e-2,
                    "seed {seed} act {act} param {p} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn gradcheck_random_networks(
            seed in 0u64..10_000,
            b in 1usize..4,
            d_in in 2usize..5,
            d_h in 2usize..6,
            d_out in 2usize..5,
            act in 0u8..3,
        ) {
            check_random_net(seed, b, d_in, d_h, d_out, act);
        }
    }
}
