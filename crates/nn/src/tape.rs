//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation applied to [`TensorId`] handles. Values
//! are computed eagerly during the forward pass; [`Tape::backward`] then walks
//! the recorded nodes in reverse, producing gradients for every node.
//! Parameters live outside the tape in a [`ParamSet`] so the tape can be
//! discarded and rebuilt every training step.
//!
//! # Buffer reuse
//!
//! Every forward op and every gradient draws its storage from an internal
//! arena of recycled `Vec<f32>` buffers. Training loops should keep **one**
//! tape alive and call [`Tape::reset`] between steps instead of constructing a
//! fresh `Tape`: because a step replays the same op sequence, after the first
//! step the arena hands back same-sized buffers in the same order and the
//! forward+backward pass stops allocating entirely. Combined with
//! [`Tape::backward_accumulate`] — which harvests parameter gradients in the
//! reverse walk and recycles every intermediate gradient — a seq2seq training
//! step performs no per-op heap allocation in steady state.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

/// A set of trainable parameters, addressed by the index returned from
/// [`ParamSet::add`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamSet {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its slot index.
    pub fn add(&mut self, value: Matrix) -> usize {
        let (r, c) = value.shape();
        self.values.push(value);
        self.grads.push(Matrix::zeros(r, c));
        self.values.len() - 1
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set contains no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable access to a parameter value.
    pub fn value(&self, idx: usize) -> &Matrix {
        &self.values[idx]
    }

    /// Mutable access to a parameter value.
    pub fn value_mut(&mut self, idx: usize) -> &mut Matrix {
        &mut self.values[idx]
    }

    /// Immutable access to a parameter gradient accumulator.
    pub fn grad(&self, idx: usize) -> &Matrix {
        &self.grads[idx]
    }

    /// Mutable access to a parameter gradient accumulator.
    pub fn grad_mut(&mut self, idx: usize) -> &mut Matrix {
        &mut self.grads[idx]
    }

    /// Resets all gradient accumulators to zero in place.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(Matrix::norm_sq).sum::<f32>().sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grads(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
        norm
    }
}

enum Op {
    /// Constant input; no gradient flows past it.
    Leaf,
    /// Parameter from a [`ParamSet`] slot; gradient is harvested by
    /// [`Tape::accumulate_param_grads`].
    Param(usize),
    MatMul(TensorId, TensorId),
    ConcatRows(TensorId, TensorId),
    Add(TensorId, TensorId),
    AddRow(TensorId, TensorId),
    Hadamard(TensorId, TensorId),
    Scale(TensorId, f32),
    Sigmoid(TensorId),
    Tanh(TensorId),
    Relu(TensorId),
    Softmax(TensorId),
    ConcatCols(TensorId, TensorId),
    SliceCols(TensorId, usize, usize),
    Gather(TensorId, Vec<usize>),
    RowDot(TensorId, TensorId),
    MulCol(TensorId, TensorId),
    Dropout(TensorId, Vec<f32>),
    CrossEntropy {
        logits: TensorId,
        targets: Vec<usize>,
        probs: Matrix,
    },
    MeanOf(Vec<TensorId>),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Arena of recycled flat buffers, bucketed by capacity. A training step
/// replays roughly the same op sequence every iteration, so each request
/// finds a bucket whose capacity matches exactly and no allocation happens
/// in steady state. (A single LIFO stack does not work here: buffers are
/// recycled in recording order but requested in the same order, so nearly
/// every request would pop a wrong-sized buffer and reallocate it.)
#[derive(Default)]
struct Pool {
    buckets: std::collections::BTreeMap<usize, Vec<Vec<f32>>>,
}

impl Pool {
    /// Pops a recycled buffer with capacity at least `len`, preferring the
    /// tightest fit.
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        let (&cap, bucket) = self.buckets.range_mut(len..).next()?;
        let buf = bucket.pop().expect("pool buckets are never left empty");
        if bucket.is_empty() {
            self.buckets.remove(&cap);
        }
        Some(buf)
    }

    /// Returns a buffer of exactly `len` zeros, reusing a recycled allocation
    /// when one is available.
    fn zeros(&mut self, len: usize) -> Vec<f32> {
        match self.take(len) {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer of exactly `len` elements with *unspecified* (stale
    /// but valid) contents. Callers must overwrite every element before the
    /// buffer is read; skipping the zero fill is what makes this cheaper
    /// than [`Pool::zeros`] for ops that fully define their output.
    fn scratch(&mut self, len: usize) -> Vec<f32> {
        match self.take(len) {
            Some(mut buf) => {
                if buf.len() < len {
                    buf.resize(len, 0.0);
                } else {
                    buf.truncate(len);
                }
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer's allocation to the arena.
    fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.buckets.entry(buf.capacity()).or_default().push(buf);
        }
    }
}

/// The autodiff tape. See the [module documentation](self) for the life cycle
/// and the buffer-reuse contract.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: Pool,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all recorded nodes, recycling their storage into the tape's
    /// buffer arena. Call this between training steps instead of building a
    /// fresh `Tape` — the next forward pass then reuses the allocations.
    pub fn reset(&mut self) {
        // Split borrows: drain `nodes` while feeding `pool`.
        let Tape { nodes, pool } = self;
        for node in nodes.drain(..) {
            pool.put(node.value.into_data());
            match node.op {
                Op::CrossEntropy { probs, .. } => pool.put(probs.into_data()),
                Op::Dropout(_, mask) => pool.put(mask),
                _ => {}
            }
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a recorded node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> TensorId {
        self.nodes.push(Node { value, op });
        TensorId(self.nodes.len() - 1)
    }

    /// Pooled `rows x cols` matrix of zeros.
    fn pooled(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.pool.zeros(rows * cols))
    }

    /// Pooled `rows x cols` matrix with unspecified contents, for ops that
    /// overwrite every output element (see [`Pool::scratch`]).
    fn pooled_scratch(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.pool.scratch(rows * cols))
    }

    /// Pooled element-wise map of node `a` recorded as `op`.
    fn unary_map(&mut self, a: TensorId, op: Op, f: impl Fn(f32) -> f32) -> TensorId {
        let (r, c) = self.value(a).shape();
        let mut out = self.pooled_scratch(r, c);
        for (o, &x) in out.data_mut().iter_mut().zip(self.value(a).data()) {
            *o = f(x);
        }
        self.push(out, op)
    }

    /// Records a constant (non-differentiable) input.
    pub fn leaf(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf)
    }

    /// Records parameter `idx` from `params` as a differentiable leaf.
    pub fn param(&mut self, params: &ParamSet, idx: usize) -> TensorId {
        let (r, c) = params.value(idx).shape();
        let mut v = self.pooled_scratch(r, c);
        v.data_mut().copy_from_slice(params.value(idx).data());
        self.push(v, Op::Param(idx))
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let m = self.value(a).rows();
        let n = self.value(b).cols();
        let mut v = self.pooled(m, n);
        self.value(a).matmul_into(self.value(b), &mut v);
        self.push(v, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "add shape mismatch"
        );
        let (r, c) = self.value(a).shape();
        let mut v = self.pooled_scratch(r, c);
        let (va, vb) = (self.value(a), self.value(b));
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(va.data()).zip(vb.data()) {
            *o = x + y;
        }
        self.push(v, Op::Add(a, b))
    }

    /// Adds a `1 x C` row vector to every row of a `B x C` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x C` for the `B x C` input.
    pub fn add_row(&mut self, a: TensorId, bias: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(bias).shape();
        assert_eq!(
            (br, bc),
            (1, ac),
            "add_row bias must be 1x{ac}, got {br}x{bc}"
        );
        let mut v = self.pooled_scratch(ar, ac);
        let (va, vb) = (self.value(a), self.value(bias));
        for r in 0..ar {
            let bias_row = vb.row(0);
            for ((o, &x), &b) in v.row_mut(r).iter_mut().zip(va.row(r)).zip(bias_row) {
                *o = x + b;
            }
        }
        self.push(v, Op::AddRow(a, bias))
    }

    /// Element-wise product of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "hadamard shape mismatch"
        );
        let (r, c) = self.value(a).shape();
        let mut v = self.pooled_scratch(r, c);
        let (va, vb) = (self.value(a), self.value(b));
        for ((o, &x), &y) in v.data_mut().iter_mut().zip(va.data()).zip(vb.data()) {
            *o = x * y;
        }
        self.push(v, Op::Hadamard(a, b))
    }

    /// Multiplies a tensor by a scalar.
    pub fn scale(&mut self, a: TensorId, s: f32) -> TensorId {
        self.unary_map(a, Op::Scale(a, s), |x| x * s)
    }

    /// Logistic sigmoid, element-wise.
    ///
    /// Routes through [`crate::matrix::sigmoid_slice`], whose vectorized
    /// polynomial fast path stays within `1e-7` of the libm-exact reference
    /// (`--features reference-kernels` restores the latter).
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.value(a).shape();
        let mut out = self.pooled_scratch(r, c);
        crate::matrix::sigmoid_slice(self.value(a).data(), out.data_mut());
        self.push(out, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent, element-wise.
    ///
    /// Routes through [`crate::matrix::tanh_slice`] (see [`Tape::sigmoid`]
    /// for the fast-path/reference split).
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.value(a).shape();
        let mut out = self.pooled_scratch(r, c);
        crate::matrix::tanh_slice(self.value(a).data(), out.data_mut());
        self.push(out, Op::Tanh(a))
    }

    /// Rectified linear unit, element-wise.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.value(a).shape();
        let mut v = self.pooled_scratch(r, c);
        v.data_mut().copy_from_slice(self.value(a).data());
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(v, Op::Softmax(a))
    }

    /// Concatenates two tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(ar, br, "concat_cols row mismatch: {ar} vs {br}");
        let mut v = self.pooled_scratch(ar, ac + bc);
        let (va, vb) = (self.value(a), self.value(b));
        for r in 0..ar {
            v.row_mut(r)[..ac].copy_from_slice(va.row(r));
            v.row_mut(r)[ac..].copy_from_slice(vb.row(r));
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Stacks two tensors with equal column counts along rows: `a` on top of
    /// `b`. Used to pack separate weight matrices into one GEMM operand (the
    /// fused LSTM/GRU gate path).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn concat_rows(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        assert_eq!(ac, bc, "concat_rows col mismatch: {ac} vs {bc}");
        let mut v = self.pooled_scratch(ar + br, ac);
        let (va, vb) = (self.value(a), self.value(b));
        v.data_mut()[..ar * ac].copy_from_slice(va.data());
        v.data_mut()[ar * ac..].copy_from_slice(vb.data());
        self.push(v, Op::ConcatRows(a, b))
    }

    /// Takes columns `[start, start + len)` of a tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, a: TensorId, start: usize, len: usize) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        assert!(
            start + len <= ac,
            "slice_cols [{start}, {}) out of 0..{ac}",
            start + len
        );
        let mut v = self.pooled_scratch(ar, len);
        let va = self.value(a);
        for r in 0..ar {
            v.row_mut(r).copy_from_slice(&va.row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols(a, start, len))
    }

    /// Gathers rows of `src` by index: output row `r` is `src` row
    /// `indices[r]`. The canonical embedding lookup.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&mut self, src: TensorId, indices: &[usize]) -> TensorId {
        let (sr, sc) = self.value(src).shape();
        let mut v = self.pooled_scratch(indices.len(), sc);
        let vs = self.value(src);
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < sr, "gather index {i} out of bounds for {sr} rows");
            v.row_mut(r).copy_from_slice(vs.row(i));
        }
        self.push(v, Op::Gather(src, indices.to_vec()))
    }

    /// Row-wise dot product of two `B x C` tensors producing `B x 1`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn row_dot(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "row_dot shape mismatch"
        );
        let (rows, _) = self.value(a).shape();
        let mut v = self.pooled_scratch(rows, 1);
        let (va, vb) = (self.value(a), self.value(b));
        for r in 0..rows {
            let d: f32 = va.row(r).iter().zip(vb.row(r)).map(|(&x, &y)| x * y).sum();
            v.set(r, 0, d);
        }
        self.push(v, Op::RowDot(a, b))
    }

    /// Multiplies each row of a `B x C` tensor by the matching entry of a
    /// `B x 1` column vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `B x 1`.
    pub fn mul_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        assert_eq!(
            self.value(col).shape(),
            (ar, 1),
            "mul_col expects a {ar}x1 column"
        );
        let mut v = self.pooled_scratch(ar, ac);
        let (va, vc) = (self.value(a), self.value(col));
        for r in 0..ar {
            let s = vc.get(r, 0);
            for (o, &x) in v.row_mut(r).iter_mut().zip(va.row(r)) {
                *o = x * s;
            }
        }
        self.push(v, Op::MulCol(a, col))
    }

    /// Inverted dropout: keeps each element with probability `1 - p`, scaling
    /// kept elements by `1 / (1 - p)`. `p == 0` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn dropout(&mut self, a: TensorId, p: f32, rng: &mut impl rand::Rng) -> TensorId {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} must be in [0, 1)"
        );
        if p == 0.0 {
            return a;
        }
        let (r, c) = self.value(a).shape();
        let keep = 1.0 - p;
        let mut mask = self.pool.scratch(r * c);
        for m in mask.iter_mut() {
            *m = if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            };
        }
        let mut v = self.pooled_scratch(r, c);
        let va = self.value(a);
        for ((o, &x), &m) in v.data_mut().iter_mut().zip(va.data()).zip(mask.iter()) {
            *o = x * m;
        }
        self.push(v, Op::Dropout(a, mask))
    }

    /// Mean cross-entropy loss of row-wise logits against integer targets.
    /// Produces a `1 x 1` scalar node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of logit rows, or a
    /// target is out of vocabulary range.
    pub fn cross_entropy(&mut self, logits: TensorId, targets: &[usize]) -> TensorId {
        let (rows, cols) = self.value(logits).shape();
        assert_eq!(rows, targets.len(), "cross_entropy target count mismatch");
        let mut probs = self.pooled_scratch(rows, cols);
        probs.data_mut().copy_from_slice(self.value(logits).data());
        for r in 0..rows {
            let row = probs.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < cols, "cross_entropy target {t} out of vocab {cols}");
            let p = probs.get(r, t);
            // Floor the probability so ln stays finite, but let NaN through:
            // NaN here means the forward pass diverged, and `f32::max`
            // silently swallowing it would hide that from loss guards.
            loss -= if p.is_nan() { p } else { p.max(1e-12) }.ln();
        }
        loss /= rows as f32;
        let mut v = self.pooled(1, 1);
        v.set(0, 0, loss);
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// Averages several `1 x 1` scalar nodes into one.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or any node is not `1 x 1`.
    pub fn mean_of(&mut self, ids: &[TensorId]) -> TensorId {
        assert!(!ids.is_empty(), "mean_of needs at least one node");
        let mut acc = 0.0;
        for &id in ids {
            assert_eq!(
                self.value(id).shape(),
                (1, 1),
                "mean_of expects scalar nodes"
            );
            acc += self.value(id).get(0, 0);
        }
        acc /= ids.len() as f32;
        let mut v = self.pooled(1, 1);
        v.set(0, 0, acc);
        self.push(v, Op::MeanOf(ids.to_vec()))
    }

    /// Runs the reverse pass from `loss` (which must be `1 x 1`) and returns
    /// the gradient of every node with respect to the loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar node.
    pub fn backward(&mut self, loss: TensorId) -> Vec<Option<Matrix>> {
        self.backward_impl(loss, None)
    }

    /// Runs the reverse pass and adds every `Param` node's gradient straight
    /// into the matching [`ParamSet`] accumulator, recycling all intermediate
    /// gradient buffers into the tape's arena. This is the allocation-free
    /// training path; use [`Tape::backward`] when per-node gradients are
    /// needed (tests, diagnostics). The gradient values are identical to
    /// `backward` + [`Tape::accumulate_param_grads`].
    pub fn backward_accumulate(&mut self, loss: TensorId, params: &mut ParamSet) {
        self.backward_impl(loss, Some(params));
    }

    fn backward_impl(
        &mut self,
        loss: TensorId,
        mut harvest: Option<&mut ParamSet>,
    ) -> Vec<Option<Matrix>> {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward root must be a 1x1 scalar"
        );
        // When harvesting, gradients are consumed as soon as their node is
        // processed, so each buffer can go straight back to the arena.
        let recycle = harvest.is_some();
        // Split borrows: node reads and pool writes coexist below.
        let Tape { nodes, pool } = self;
        /// Pooled `rows x cols` zero matrix.
        fn pz(pool: &mut Pool, rows: usize, cols: usize) -> Matrix {
            Matrix::from_vec(rows, cols, pool.zeros(rows * cols))
        }
        /// Pooled copy of `src`.
        fn pc(pool: &mut Pool, src: &Matrix) -> Matrix {
            let mut out = pz(pool, src.rows(), src.cols());
            out.data_mut().copy_from_slice(src.data());
            out
        }
        let mut grads: Vec<Option<Matrix>> = vec![None; nodes.len()];
        let mut seed = pz(pool, 1, 1);
        seed.set(0, 0, 1.0);
        grads[loss.0] = Some(seed);

        for i in (0..nodes.len()).rev() {
            let g = if recycle {
                match grads[i].take() {
                    Some(g) => g,
                    None => continue,
                }
            } else {
                match &grads[i] {
                    Some(g) => g.clone(),
                    None => continue,
                }
            };
            match &nodes[i].op {
                Op::Leaf => {}
                Op::Param(idx) => {
                    if let Some(params) = harvest.as_deref_mut() {
                        params.grad_mut(*idx).add_assign(&g);
                    }
                }
                Op::MatMul(a, b) => {
                    let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = pz(pool, g.rows(), vb.rows());
                    g.matmul_nt_into(vb, &mut ga);
                    let mut gb = pz(pool, va.cols(), g.cols());
                    va.matmul_tn_into(&g, &mut gb);
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, b.0, gb);
                }
                Op::ConcatRows(a, b) => {
                    let ar = nodes[a.0].value.rows();
                    let (br, c) = nodes[b.0].value.shape();
                    let mut ga = pz(pool, ar, c);
                    ga.data_mut().copy_from_slice(&g.data()[..ar * c]);
                    let mut gb = pz(pool, br, c);
                    gb.data_mut().copy_from_slice(&g.data()[ar * c..]);
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, b.0, gb);
                }
                Op::Add(a, b) => {
                    let ga = pc(pool, &g);
                    let gb = pc(pool, &g);
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, b.0, gb);
                }
                Op::AddRow(a, bias) => {
                    let mut gb = pz(pool, 1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &v) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    let ga = pc(pool, &g);
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, bias.0, gb);
                }
                Op::Hadamard(a, b) => {
                    let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = pz(pool, g.rows(), g.cols());
                    for ((o, &gv), &bv) in ga.data_mut().iter_mut().zip(g.data()).zip(vb.data()) {
                        *o = gv * bv;
                    }
                    let mut gb = pz(pool, g.rows(), g.cols());
                    for ((o, &gv), &av) in gb.data_mut().iter_mut().zip(g.data()).zip(va.data()) {
                        *o = gv * av;
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, b.0, gb);
                }
                Op::Scale(a, s) => {
                    let mut ga = pz(pool, g.rows(), g.cols());
                    for (o, &gv) in ga.data_mut().iter_mut().zip(g.data()) {
                        *o = gv * s;
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::Sigmoid(a) => {
                    let y = &nodes[i].value;
                    let mut ga = pz(pool, g.rows(), g.cols());
                    for ((o, &gv), &yv) in ga.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                        *o = gv * (yv * (1.0 - yv));
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::Tanh(a) => {
                    let y = &nodes[i].value;
                    let mut ga = pz(pool, g.rows(), g.cols());
                    for ((o, &gv), &yv) in ga.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                        *o = gv * (1.0 - yv * yv);
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::Relu(a) => {
                    let y = &nodes[i].value;
                    let mut ga = pz(pool, g.rows(), g.cols());
                    for ((o, &gv), &yv) in ga.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                        *o = gv * if yv > 0.0 { 1.0 } else { 0.0 };
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::Softmax(a) => {
                    let y = &nodes[i].value;
                    let mut ga = pz(pool, y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&gv, &yv)| gv * yv)
                            .sum();
                        for ((o, &gv), &yv) in ga.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r))
                        {
                            *o = (gv - dot) * yv;
                        }
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ac = nodes[a.0].value.cols();
                    let bc = nodes[b.0].value.cols();
                    let rows = g.rows();
                    let mut ga = pz(pool, rows, ac);
                    let mut gb = pz(pool, rows, bc);
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, b.0, gb);
                }
                Op::SliceCols(a, start, len) => {
                    let (ar, ac) = nodes[a.0].value.shape();
                    let mut ga = pz(pool, ar, ac);
                    for r in 0..ar {
                        ga.row_mut(r)[*start..start + len].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::Gather(src, indices) => {
                    let (sr, sc) = nodes[src.0].value.shape();
                    let mut gs = pz(pool, sr, sc);
                    for (r, &idx) in indices.iter().enumerate() {
                        for (o, &v) in gs.row_mut(idx).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    accumulate(&mut grads, pool, src.0, gs);
                }
                Op::RowDot(a, b) => {
                    let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = pz(pool, va.rows(), va.cols());
                    let mut gb = pz(pool, vb.rows(), vb.cols());
                    for r in 0..va.rows() {
                        let gr = g.get(r, 0);
                        for (o, &bv) in ga.row_mut(r).iter_mut().zip(vb.row(r)) {
                            *o = gr * bv;
                        }
                        for (o, &av) in gb.row_mut(r).iter_mut().zip(va.row(r)) {
                            *o = gr * av;
                        }
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, b.0, gb);
                }
                Op::MulCol(a, col) => {
                    let (va, vc) = (&nodes[a.0].value, &nodes[col.0].value);
                    let mut ga = pz(pool, va.rows(), va.cols());
                    let mut gc = pz(pool, va.rows(), 1);
                    for r in 0..va.rows() {
                        let s = vc.get(r, 0);
                        let mut dot = 0.0;
                        for ((o, &gv), &av) in ga.row_mut(r).iter_mut().zip(g.row(r)).zip(va.row(r))
                        {
                            *o = gv * s;
                            dot += gv * av;
                        }
                        gc.set(r, 0, dot);
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                    accumulate(&mut grads, pool, col.0, gc);
                }
                Op::Dropout(a, mask) => {
                    let mut ga = pz(pool, g.rows(), g.cols());
                    for ((o, &gv), &m) in ga.data_mut().iter_mut().zip(g.data()).zip(mask.iter()) {
                        *o = gv * m;
                    }
                    accumulate(&mut grads, pool, a.0, ga);
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let scale = g.get(0, 0) / targets.len() as f32;
                    let mut gl = pc(pool, probs);
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, t, gl.get(r, t) - 1.0);
                    }
                    gl.scale_assign(scale);
                    accumulate(&mut grads, pool, logits.0, gl);
                }
                Op::MeanOf(ids) => {
                    let share = g.get(0, 0) / ids.len() as f32;
                    for id in ids {
                        let mut gi = pz(pool, 1, 1);
                        gi.set(0, 0, share);
                        accumulate(&mut grads, pool, id.0, gi);
                    }
                }
            }
            // `g` is always an owned temporary here (taken or cloned), so its
            // allocation can be recycled regardless of mode.
            pool.put(g.into_data());
        }
        grads
    }

    /// Adds the gradients of every `Param` node recorded on this tape into the
    /// matching [`ParamSet`] accumulators.
    pub fn accumulate_param_grads(&self, grads: &[Option<Matrix>], params: &mut ParamSet) {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Op::Param(idx) = node.op {
                if let Some(g) = &grads[i] {
                    params.grad_mut(idx).add_assign(g);
                }
            }
        }
    }
}

/// Adds `g` into the gradient slot `idx`, recycling `g`'s buffer when the
/// slot is already populated.
fn accumulate(grads: &mut [Option<Matrix>], pool: &mut Pool, idx: usize, g: Matrix) {
    match &mut grads[idx] {
        Some(existing) => {
            existing.add_assign(&g);
            pool.put(g.into_data());
        }
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check: builds the loss with `f` twice per
    /// perturbed parameter element and compares against the tape gradient.
    fn grad_check(params: &mut ParamSet, f: impl Fn(&mut Tape, &ParamSet) -> TensorId) {
        let mut tape = Tape::new();
        let loss = f(&mut tape, params);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, params);

        let eps = 1e-2f32;
        for p in 0..params.len() {
            let (rows, cols) = params.value(p).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = params.value(p).get(r, c);
                    params.value_mut(p).set(r, c, orig + eps);
                    let mut t1 = Tape::new();
                    let l1 = f(&mut t1, params);
                    let up = t1.value(l1).get(0, 0);
                    params.value_mut(p).set(r, c, orig - eps);
                    let mut t2 = Tape::new();
                    let l2 = f(&mut t2, params);
                    let down = t2.value(l2).get(0, 0);
                    params.value_mut(p).set(r, c, orig);

                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = params.grad(p).get(r, c);
                    let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                    assert!(
                        (numeric - analytic).abs() / denom < 5e-2,
                        "param {p} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut params = ParamSet::new();
        let w1 = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        let w2 = params.add(Matrix::uniform(4, 2, 0.5, &mut rng));
        let x = Matrix::uniform(2, 3, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let xi = t.leaf(x.clone());
            let a = t.param(p, w1);
            let b = t.param(p, w2);
            let h = t.matmul(xi, a);
            let h = t.tanh(h);
            let logits = t.matmul(h, b);
            t.cross_entropy(logits, &[0, 1])
        });
    }

    #[test]
    fn gradcheck_gates_and_bias() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut params = ParamSet::new();
        let w = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        let b = params.add(Matrix::uniform(1, 4, 0.5, &mut rng));
        let x = Matrix::uniform(2, 3, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let xi = t.leaf(x.clone());
            let wi = t.param(p, w);
            let bi = t.param(p, b);
            let z = t.matmul(xi, wi);
            let z = t.add_row(z, bi);
            let i = t.slice_cols(z, 0, 2);
            let j = t.slice_cols(z, 2, 2);
            let i = t.sigmoid(i);
            let j = t.tanh(j);
            let h = t.hadamard(i, j);
            t.cross_entropy(h, &[1, 0])
        });
    }

    #[test]
    fn gradcheck_attention_ops() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut params = ParamSet::new();
        let w = params.add(Matrix::uniform(2, 3, 0.5, &mut rng));
        let q = Matrix::uniform(2, 3, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let wi = t.param(p, w);
            let keys = t.leaf(Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.3]));
            // Project the 2x2 identity through w to get 2x3 "queries".
            let eye = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
            let qs = t.matmul(eye, wi);
            let qfixed = t.leaf(q.clone());
            let qs = t.add(qs, qfixed);
            let s1 = t.row_dot(qs, keys);
            let weights = t.softmax(s1);
            let ctx = t.mul_col(keys, weights);
            let both = t.concat_cols(ctx, qs);
            let both = t.tanh(both);
            let sum = t.slice_cols(both, 0, 2);
            t.cross_entropy(sum, &[0, 1])
        });
    }

    #[test]
    fn gradcheck_gather_embedding() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut params = ParamSet::new();
        let emb = params.add(Matrix::uniform(5, 3, 0.5, &mut rng));
        let proj = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        grad_check(&mut params, move |t, p| {
            let e = t.param(p, emb);
            let w = t.param(p, proj);
            let x = t.gather(e, &[1, 3, 1]);
            let logits = t.matmul(x, w);
            t.cross_entropy(logits, &[0, 2, 3])
        });
    }

    #[test]
    fn gradcheck_mean_of_losses() {
        let mut rng = StdRng::seed_from_u64(46);
        let mut params = ParamSet::new();
        let w = params.add(Matrix::uniform(2, 3, 0.5, &mut rng));
        let x = Matrix::uniform(2, 2, 0.5, &mut rng);
        grad_check(&mut params, move |t, p| {
            let wi = t.param(p, w);
            let xi = t.leaf(x.clone());
            let l1_in = t.matmul(xi, wi);
            let l1 = t.cross_entropy(l1_in, &[0, 1]);
            let scaled = t.scale(l1_in, 0.5);
            let l2 = t.cross_entropy(scaled, &[2, 0]);
            t.mean_of(&[l1, l2])
        });
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let b = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn dropout_scales_kept_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::filled(1, 1000, 1.0));
        let b = tape.dropout(a, 0.5, &mut rng);
        let mean: f32 = tape.value(b).data().iter().sum::<f32>() / 1000.0;
        // Inverted dropout preserves the expectation.
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
        for &v in tape.value(b).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn clip_grads_caps_norm() {
        let mut params = ParamSet::new();
        let p = params.add(Matrix::zeros(1, 2));
        *params.grad_mut(p) = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let pre = params.clip_grads(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((params.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let loss = tape.cross_entropy(logits, &[0]);
        // Uniform distribution over 2 classes => loss = ln 2.
        assert!((tape.value(loss).get(0, 0) - 2.0f32.ln()).abs() < 1e-6);
    }

    /// Small two-layer network used by the arena tests below.
    fn demo_net(tape: &mut Tape, params: &ParamSet, w1: usize, w2: usize, x: &Matrix) -> TensorId {
        let xi = tape.leaf(x.clone());
        let a = tape.param(params, w1);
        let b = tape.param(params, w2);
        let h = tape.matmul(xi, a);
        let h = tape.tanh(h);
        let logits = tape.matmul(h, b);
        tape.cross_entropy(logits, &[0, 1])
    }

    #[test]
    fn backward_accumulate_matches_backward_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = ParamSet::new();
        let w1 = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        let w2 = params.add(Matrix::uniform(4, 2, 0.5, &mut rng));
        let x = Matrix::uniform(2, 3, 0.5, &mut rng);

        let mut t1 = Tape::new();
        let loss1 = demo_net(&mut t1, &params, w1, w2, &x);
        let grads = t1.backward(loss1);
        let mut via_backward = params.clone();
        via_backward.zero_grads();
        t1.accumulate_param_grads(&grads, &mut via_backward);

        let mut t2 = Tape::new();
        let loss2 = demo_net(&mut t2, &params, w1, w2, &x);
        let mut via_accumulate = params.clone();
        via_accumulate.zero_grads();
        t2.backward_accumulate(loss2, &mut via_accumulate);

        for p in 0..params.len() {
            assert_eq!(via_backward.grad(p), via_accumulate.grad(p), "param {p}");
        }
    }

    #[test]
    fn reset_tape_replays_identically() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = ParamSet::new();
        let w1 = params.add(Matrix::uniform(3, 4, 0.5, &mut rng));
        let w2 = params.add(Matrix::uniform(4, 2, 0.5, &mut rng));
        let x = Matrix::uniform(2, 3, 0.5, &mut rng);

        // One long-lived tape with reset between steps must reproduce the
        // fresh-tape-per-step losses and gradients exactly.
        let mut reused = Tape::new();
        for _ in 0..3 {
            let mut fresh = Tape::new();
            let fresh_loss = demo_net(&mut fresh, &params, w1, w2, &x);
            let mut fresh_params = params.clone();
            fresh_params.zero_grads();
            fresh.backward_accumulate(fresh_loss, &mut fresh_params);

            reused.reset();
            let reused_loss = demo_net(&mut reused, &params, w1, w2, &x);
            assert_eq!(fresh.value(fresh_loss), reused.value(reused_loss));
            params.zero_grads();
            reused.backward_accumulate(reused_loss, &mut params);
            for p in 0..params.len() {
                assert_eq!(fresh_params.grad(p), params.grad(p), "param {p}");
            }
        }
    }

    #[test]
    fn concat_rows_forward_and_gradient() {
        let mut params = ParamSet::new();
        let top = params.add(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let bot = params.add(Matrix::from_vec(1, 2, vec![5.0, 6.0]));
        let mut tape = Tape::new();
        let a = tape.param(&params, top);
        let b = tape.param(&params, bot);
        let stacked = tape.concat_rows(a, b);
        assert_eq!(tape.value(stacked).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Rows of the 1x3 operand pick out rows of the stack: the loss
        // gradient must split back into the two original parameters.
        let x = tape.leaf(Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]));
        let prod = tape.matmul(x, stacked);
        let loss = tape.cross_entropy(prod, &[0]);
        params.zero_grads();
        tape.backward_accumulate(loss, &mut params);
        assert_eq!(params.grad(top).shape(), (2, 2));
        assert_eq!(params.grad(bot).shape(), (1, 2));
        let g: Vec<f32> = params
            .grad(top)
            .data()
            .iter()
            .chain(params.grad(bot).data())
            .copied()
            .collect();
        assert!(
            g.iter().any(|&v| v != 0.0),
            "gradient should flow through concat_rows"
        );
    }

    #[test]
    #[should_panic(expected = "backward root must be a 1x1 scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::zeros(2, 2));
        let _ = tape.backward(a);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Randomized gradient check: a two-layer network with random shapes and
    /// random activation choices must match finite differences.
    fn check_random_net(seed: u64, b: usize, d_in: usize, d_h: usize, d_out: usize, act: u8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let w1 = params.add(Matrix::uniform(d_in, d_h, 0.5, &mut rng));
        let b1 = params.add(Matrix::uniform(1, d_h, 0.5, &mut rng));
        let w2 = params.add(Matrix::uniform(d_h, d_out, 0.5, &mut rng));
        let x = Matrix::uniform(b, d_in, 0.5, &mut rng);
        let targets: Vec<usize> = (0..b).map(|i| i % d_out).collect();

        let forward = |tape: &mut Tape, params: &ParamSet| {
            let xi = tape.leaf(x.clone());
            let w1i = tape.param(params, w1);
            let b1i = tape.param(params, b1);
            let w2i = tape.param(params, w2);
            let h = tape.matmul(xi, w1i);
            let h = tape.add_row(h, b1i);
            let h = match act {
                0 => tape.tanh(h),
                1 => tape.sigmoid(h),
                _ => {
                    // Softmax keeps values near the interior, away from the
                    // relu kink, so finite differences stay valid.
                    tape.softmax(h)
                }
            };
            let logits = tape.matmul(h, w2i);
            tape.cross_entropy(logits, &targets)
        };

        let mut tape = Tape::new();
        let loss = forward(&mut tape, &params);
        let grads = tape.backward(loss);
        params.zero_grads();
        tape.accumulate_param_grads(&grads, &mut params);

        let eps = 1e-2f32;
        for p in 0..params.len() {
            let (rows, cols) = params.value(p).shape();
            // Spot-check a handful of coordinates to keep runtime bounded.
            for (r, c) in [(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let orig = params.value(p).get(r, c);
                params.value_mut(p).set(r, c, orig + eps);
                let mut t1 = Tape::new();
                let l1 = forward(&mut t1, &params);
                let up = t1.value(l1).get(0, 0);
                params.value_mut(p).set(r, c, orig - eps);
                let mut t2 = Tape::new();
                let l2 = forward(&mut t2, &params);
                let down = t2.value(l2).get(0, 0);
                params.value_mut(p).set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                let analytic = params.grad(p).get(r, c);
                let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                assert!(
                    (numeric - analytic).abs() / denom < 6e-2,
                    "seed {seed} act {act} param {p} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn gradcheck_random_networks(
            seed in 0u64..10_000,
            b in 1usize..4,
            d_in in 2usize..5,
            d_h in 2usize..6,
            d_out in 2usize..5,
            act in 0u8..3,
        ) {
            check_random_net(seed, b, d_in, d_h, d_out, act);
        }
    }
}
