//! Error type for the neural substrate.

use std::error::Error;
use std::fmt;

/// Errors reported by model training and inference entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A training corpus contained no sentence pairs.
    EmptyCorpus,
    /// Sequences in one batch had inconsistent lengths.
    RaggedSequences {
        /// Length of the first sequence in the batch.
        expected: usize,
        /// Offending length encountered later in the batch.
        found: usize,
    },
    /// A token id was outside the configured vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: usize,
        /// The vocabulary size it must be below.
        vocab: usize,
    },
    /// A sequence of length zero was provided.
    EmptySequence,
    /// The training loss became NaN or infinite — the optimization diverged
    /// (typically an oversized learning rate or a degenerate batch). The
    /// model parameters are unusable after this error; retrain from a fresh
    /// initialization.
    Diverged {
        /// Mini-batch update index at which the non-finite loss appeared.
        step: usize,
    },
    /// A weight offered for quantization was NaN or infinite. A non-finite
    /// row maximum would poison the whole row's int8 scale (and f16 encodes
    /// non-finite values as saturated finite ones), so quantization refuses
    /// the model instead of producing a silently-wrong artifact.
    NonFiniteWeight,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::EmptyCorpus => write!(f, "training corpus contains no sentence pairs"),
            NnError::RaggedSequences { expected, found } => {
                write!(
                    f,
                    "inconsistent sequence lengths in batch: expected {expected}, found {found}"
                )
            }
            NnError::TokenOutOfRange { token, vocab } => {
                write!(f, "token id {token} out of vocabulary range {vocab}")
            }
            NnError::EmptySequence => write!(f, "sequence of length zero provided"),
            NnError::Diverged { step } => {
                write!(f, "training diverged: non-finite loss at step {step}")
            }
            NnError::NonFiniteWeight => {
                write!(f, "non-finite weight offered for quantization")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            NnError::EmptyCorpus,
            NnError::RaggedSequences {
                expected: 3,
                found: 5,
            },
            NnError::TokenOutOfRange { token: 9, vocab: 4 },
            NnError::EmptySequence,
            NnError::Diverged { step: 7 },
            NnError::NonFiniteWeight,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
