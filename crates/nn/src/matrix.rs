//! Dense row-major `f32` matrix used throughout the neural substrate.
//!
//! The matrix is deliberately minimal: it supports exactly the operations the
//! autodiff tape ([`crate::tape`]) and the sequence models need, with shape
//! checks on every binary operation. All storage is a flat `Vec<f32>` in
//! row-major order.

use rand::Rng;
use serde::{Content, DeError, Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use mdes_nn::Matrix;
/// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Serialize for Matrix {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("rows".to_owned(), self.rows.to_content()),
            ("cols".to_owned(), self.cols.to_content()),
            ("data".to_owned(), self.data.to_content()),
        ])
    }
}

impl Deserialize for Matrix {
    /// Hand-written (identical wire format to the old derived impl) so the
    /// shape is *validated* against the payload: a crafted or corrupted
    /// artifact whose `data` length disagrees with `rows * cols` is rejected
    /// here instead of panicking later inside a kernel's row indexing.
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let rows: usize = serde::__field(content, "rows")?;
        let cols: usize = serde::__field(content, "cols")?;
        let data: Vec<f32> = serde::__field(content, "data")?;
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| DeError::custom("matrix shape overflows"))?;
        if data.len() != elems {
            return Err(DeError::custom(format!(
                "matrix {rows}x{cols} carries {} values",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix with elements drawn uniformly from `[-limit, limit]`.
    pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialization for a layer
    /// mapping `rows` inputs to `cols` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major storage, letting
    /// callers (the tape's buffer pool) recycle the allocation.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// Uses a register-blocked 4×4 micro-kernel (four output rows, four
    /// accumulated `other` rows per pass) with unrolled, branch-free inner
    /// loops that the compiler can vectorize. Build with
    /// `--features reference-kernels` to route through the original naive
    /// loops in [`crate::reference`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        if cfg!(feature = "reference-kernels") {
            return crate::reference::matmul(self, other);
        }
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        fast_matmul(self, other)
    }

    /// Computes `self^T * other` without materializing the transpose.
    ///
    /// Accumulates four shared rows per pass (rank-4 update) so each output
    /// row is loaded and stored once per four `k` steps instead of once per
    /// step. Build with `--features reference-kernels` for the naive loops.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        if cfg!(feature = "reference-kernels") {
            return crate::reference::matmul_tn(self, other);
        }
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        fast_matmul_tn(self, other)
    }

    /// Computes `self * other^T` without materializing the transpose.
    ///
    /// Computes a 4×4 tile of dot products per pass: sixteen independent
    /// accumulator chains hide the floating-point add latency while each chain
    /// still sums strictly in ascending shared-index order, so the result is
    /// identical to the naive loops. Build with `--features reference-kernels`
    /// for the naive loops.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        if cfg!(feature = "reference-kernels") {
            return crate::reference::matmul_nt(self, other);
        }
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        fast_matmul_nt(self, other)
    }

    /// Computes `self * other` into an existing output matrix, reusing its
    /// allocation. `out` must already have shape `self.rows x other.cols`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        if cfg!(feature = "reference-kernels") {
            *out = crate::reference::matmul(self, other);
            return;
        }
        out.data.fill(0.0);
        gemm_nn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Computes `self^T * other` into an existing output matrix.
    /// `out` must already have shape `self.cols x other.cols`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn_into output shape mismatch"
        );
        if cfg!(feature = "reference-kernels") {
            *out = crate::reference::matmul_tn(self, other);
            return;
        }
        out.data.fill(0.0);
        gemm_tn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Computes `self * other^T` into an existing output matrix.
    /// `out` must already have shape `self.rows x other.rows`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_nt_into output shape mismatch"
        );
        if cfg!(feature = "reference-kernels") {
            *out = crate::reference::matmul_nt(self, other);
            return;
        }
        gemm_nt(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise addition in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Returns `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns element-wise product `self ⊙ other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Squared Frobenius norm (sum of squared elements).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Index of the maximum element of row `r` (first occurrence on ties).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns or `r` is out of bounds.
    pub fn argmax_row(&self, r: usize) -> usize {
        assert!(self.cols > 0, "argmax_row on matrix with zero columns");
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = row[0];
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Row-wise softmax, returning a new matrix whose rows sum to one.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Blocked GEMM kernels
// ---------------------------------------------------------------------------
//
// All three kernels preserve the reference implementations' per-element
// accumulation order: every output element is the sum of its products in
// strictly ascending shared-index order, and dropping the `== 0.0` skip is
// exact for finite inputs (`x + 0.0 * y == x`). The speedup comes from
// register blocking (a 4-row × 16-column accumulator tile lives in registers
// across the whole shared dimension), branch-free unrolled inner loops the
// compiler can keep vectorized, and — for the `nt` case, where a true dot
// product cannot be vectorized without reassociating — sixteen independent
// scalar chains that hide the floating-point add latency.

/// Output rows held in registers per micro-kernel pass.
const MR: usize = 4;
/// Output columns held in registers per micro-kernel pass.
const NR: usize = 16;

fn fast_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    gemm_nn(a.rows, a.cols, b.cols, &a.data, &b.data, &mut out.data);
    out
}

fn fast_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols, b.cols);
    gemm_tn(a.rows, a.cols, b.cols, &a.data, &b.data, &mut out.data);
    out
}

fn fast_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.rows);
    gemm_nt(a.rows, a.cols, b.rows, &a.data, &b.data, &mut out.data);
    out
}

/// `out += a * b` where `a` is `m x k`, `b` is `k x n`, `out` is `m x n`
/// (zeroed by the caller). Dispatches to an AVX2-compiled clone of the
/// kernel when the CPU supports it.
fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check; the function has no
        // other preconditions.
        return unsafe { avx2::gemm_nn(m, k, n, a, b, out) };
    }
    kernel_nn(m, k, n, a, b, out);
}

/// `out += a^T * b` — see [`kernel_tn`]; dispatches like [`gemm_nn`].
fn gemm_tn(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check; the function has no
        // other preconditions.
        return unsafe { avx2::gemm_tn(k, m, n, a, b, out) };
    }
    kernel_tn(k, m, n, a, b, out);
}

/// `out = a * b^T` — see [`kernel_nt`]; dispatches like [`gemm_nn`].
fn gemm_nt(m: usize, c: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check; the function has no
        // other preconditions.
        return unsafe { avx2::gemm_nt(m, c, n, a, b, out) };
    }
    kernel_nt(m, c, n, a, b, out);
}

/// Clones of the scalar kernels compiled with AVX2 enabled, so the
/// autovectorizer emits 256-bit `vmulps`/`vaddps` for the unrolled tile
/// loops. Rust never contracts `mul` + `add` into FMA, and vector lanes map
/// to distinct output elements, so each element is still accumulated in
/// ascending shared-index order with one rounding per product and per sum —
/// results remain bit-identical to the reference loops.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{kernel_nn, kernel_nt, kernel_tn};

    #[target_feature(enable = "avx2")]
    pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernel_nn(m, k, n, a, b, out);
    }

    #[target_feature(enable = "avx2")]
    pub fn gemm_tn(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernel_tn(k, m, n, a, b, out);
    }

    #[target_feature(enable = "avx2")]
    pub fn gemm_nt(m: usize, c: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernel_nt(m, c, n, a, b, out);
    }

    #[target_feature(enable = "avx2")]
    pub fn sigmoid_slice(src: &[f32], dst: &mut [f32]) {
        super::sigmoid_kernel(src, dst);
    }

    #[target_feature(enable = "avx2")]
    pub fn tanh_slice(src: &[f32], dst: &mut [f32]) {
        super::tanh_kernel(src, dst);
    }
}

/// Element-wise logistic sigmoid of `src` into `dst`.
///
/// The fast path evaluates `1 / (1 + e^-x)` with the polynomial
/// [`exp_approx`], which vectorizes 8-wide under AVX2; absolute error stays
/// below `1e-7` (see the accuracy test in this module). Build with
/// `--features reference-kernels` to route through the libm-exact
/// [`crate::reference::sigmoid_slice`] instead.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sigmoid_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "sigmoid_slice length mismatch");
    if cfg!(feature = "reference-kernels") {
        return crate::reference::sigmoid_slice(src, dst);
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check; the function has no
        // other preconditions.
        return unsafe { avx2::sigmoid_slice(src, dst) };
    }
    sigmoid_kernel(src, dst);
}

/// Element-wise hyperbolic tangent of `src` into `dst`.
///
/// Fast path: `tanh x = (e^2x - 1) / (e^2x + 1)` on the polynomial
/// [`exp_approx`], absolute error below `1e-6` (worst near saturation).
/// Build with `--features reference-kernels` for libm
/// [`crate::reference::tanh_slice`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn tanh_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "tanh_slice length mismatch");
    if cfg!(feature = "reference-kernels") {
        return crate::reference::tanh_slice(src, dst);
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check; the function has no
        // other preconditions.
        return unsafe { avx2::tanh_slice(src, dst) };
    }
    tanh_kernel(src, dst);
}

#[inline(always)]
fn sigmoid_kernel(src: &[f32], dst: &mut [f32]) {
    for (o, &x) in dst.iter_mut().zip(src) {
        *o = 1.0 / (1.0 + exp_approx(-x));
    }
}

#[inline(always)]
fn tanh_kernel(src: &[f32], dst: &mut [f32]) {
    for (o, &x) in dst.iter_mut().zip(src) {
        // Clamp the doubled argument so `t` stays finite: beyond |x| = 8.5
        // f32 tanh is within one ulp of +/-1 anyway.
        let t = exp_approx((2.0 * x).clamp(-17.0, 17.0));
        *o = (t - 1.0) / (t + 1.0);
    }
}

/// Branch-free polynomial `e^x` (the Cephes `expf` scheme): split
/// `x = n ln 2 + r`, evaluate a degree-6 polynomial on `r` and scale by
/// `2^n` through exponent bits. Maximum relative error is about `2e-7`
/// over the clamped range. `inline(always)` so the loops above inline into
/// the AVX2-attributed wrappers and vectorize; every lane computes an
/// independent element with the same operations, so scalar and vector
/// evaluation produce identical bits.
#[inline(always)]
#[allow(clippy::excessive_precision)]
fn exp_approx(x: f32) -> f32 {
    // High/low split of ln 2 keeps the range reduction exact in f32.
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(-87.3, 88.7);
    let n = (x * std::f32::consts::LOG2_E + 0.5).floor();
    let r = x - n * LN2_HI - n * LN2_LO;
    let mut p = 1.987_569_1e-4;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 0.5;
    let p = p * (r * r) + r + 1.0;
    // 2^n assembled directly in the exponent field; n is in [-126, 128]
    // after the clamp (n = 128 overflows to +inf, matching exp overflow).
    let scale = f32::from_bits(((n as i32 + 127) << 23) as u32);
    p * scale
}

/// `out += a * b` where `a` is `m x k`, `b` is `k x n`, `out` is `m x n`
/// (zeroed by the caller). `inline(always)` so the body inlines into the
/// AVX2-attributed wrappers above and gets vectorized with their features.
#[inline(always)]
fn kernel_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let bp = &b[p * n + j..p * n + j + NR];
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a_rp = a[(i + r) * k + p];
                    for (av, &bv) in acc_r.iter_mut().zip(bp) {
                        *av += a_rp * bv;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_r);
            }
            j += NR;
        }
        if j < n {
            // Narrow column tail: rank-1 updates, still ascending in `p`.
            for p in 0..k {
                let bp = &b[p * n + j..(p + 1) * n];
                for r in 0..MR {
                    let a_rp = a[(i + r) * k + p];
                    let or = &mut out[(i + r) * n + j..(i + r + 1) * n];
                    for (o, &bv) in or.iter_mut().zip(bp) {
                        *o += a_rp * bv;
                    }
                }
            }
        }
        i += MR;
    }
    while i < m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            let bp = &b[p * n..(p + 1) * n];
            let or = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in or.iter_mut().zip(bp) {
                *o += a_ip * bv;
            }
        }
        i += 1;
    }
}

/// `out += a^T * b` where `a` is `k x m`, `b` is `k x n`, `out` is `m x n`
/// (zeroed by the caller).
#[inline(always)]
fn kernel_tn(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                // The four `a` scalars for this tile are contiguous in memory.
                let ap = &a[p * m + i..p * m + i + MR];
                let bp = &b[p * n + j..p * n + j + NR];
                for (acc_r, &a_rp) in acc.iter_mut().zip(ap) {
                    for (av, &bv) in acc_r.iter_mut().zip(bp) {
                        *av += a_rp * bv;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_r);
            }
            j += NR;
        }
        if j < n {
            for p in 0..k {
                let bp = &b[p * n + j..(p + 1) * n];
                for r in 0..MR {
                    let a_rp = a[p * m + i + r];
                    let or = &mut out[(i + r) * n + j..(i + r + 1) * n];
                    for (o, &bv) in or.iter_mut().zip(bp) {
                        *o += a_rp * bv;
                    }
                }
            }
        }
        i += MR;
    }
    while i < m {
        for p in 0..k {
            let a_ip = a[p * m + i];
            let bp = &b[p * n..(p + 1) * n];
            let or = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in or.iter_mut().zip(bp) {
                *o += a_ip * bv;
            }
        }
        i += 1;
    }
}

/// `out = a * b^T` where `a` is `m x c`, `b` is `n x c`, `out` is `m x n`.
/// Every output element is written exactly once, so `out` need not be zeroed.
#[inline(always)]
fn kernel_nt(m: usize, c: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    /// Square tile edge: 16 concurrent dot-product chains.
    const DR: usize = 4;
    let mut i = 0;
    while i + DR <= m {
        let mut j = 0;
        while j + DR <= n {
            let mut acc = [[0.0f32; DR]; DR];
            for p in 0..c {
                let mut bvals = [0.0f32; DR];
                for (s, bv) in bvals.iter_mut().enumerate() {
                    *bv = b[(j + s) * c + p];
                }
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let av = a[(i + r) * c + p];
                    for (ac, &bv) in acc_r.iter_mut().zip(&bvals) {
                        *ac += av * bv;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + DR].copy_from_slice(acc_r);
            }
            j += DR;
        }
        for jj in j..n {
            let brow = &b[jj * c..(jj + 1) * c];
            for r in 0..DR {
                out[(i + r) * n + jj] = dot(&a[(i + r) * c..(i + r + 1) * c], brow);
            }
        }
        i += DR;
    }
    while i < m {
        let arow = &a[i * c..(i + 1) * c];
        for jj in 0..n {
            out[i * n + jj] = dot(arow, &b[jj * c..(jj + 1) * c]);
        }
        i += 1;
    }
}

/// Scalar dot product in strict left-to-right order (matches the reference).
#[inline(always)]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&a, &b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(5, 3, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::uniform(3, 5, 2.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_and_add() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn argmax_row_picks_max() {
        let a = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 3.0, 2.0, 1.0]);
        assert_eq!(a.argmax_row(0), 1);
        assert_eq!(a.argmax_row(1), 0);
    }

    #[test]
    fn fast_kernels_bit_identical_to_reference_on_odd_shapes() {
        let mut rng = StdRng::seed_from_u64(42);
        // Shapes straddling the 4x16 tile boundaries, plus degenerate ones.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 4, 16),
            (5, 17, 19),
            (8, 2, 33),
            (0, 3, 4),
            (6, 0, 5),
        ] {
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            assert_eq!(
                a.matmul(&b),
                crate::reference::matmul(&a, &b),
                "{m}x{k}x{n}"
            );
            let at = Matrix::uniform(k, m, 1.0, &mut rng);
            assert_eq!(
                at.matmul_tn(&b),
                crate::reference::matmul_tn(&at, &b),
                "{m}x{k}x{n} tn"
            );
            let bt = Matrix::uniform(n, k, 1.0, &mut rng);
            assert_eq!(
                a.matmul_nt(&bt),
                crate::reference::matmul_nt(&a, &bt),
                "{m}x{k}x{n} nt"
            );
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::uniform(5, 7, 1.0, &mut rng);
        let b = Matrix::uniform(7, 9, 1.0, &mut rng);
        let mut out = Matrix::filled(5, 9, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let mut out_tn = Matrix::filled(7, 9, f32::NAN);
        let at = Matrix::uniform(5, 7, 1.0, &mut rng);
        let bt = Matrix::uniform(5, 9, 1.0, &mut rng);
        at.matmul_tn_into(&bt, &mut out_tn);
        assert_eq!(out_tn, at.matmul_tn(&bt));
        let mut out_nt = Matrix::filled(5, 5, f32::NAN);
        let c = Matrix::uniform(5, 7, 1.0, &mut rng);
        a.matmul_nt_into(&c, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&c));
    }

    #[test]
    fn deserialize_validates_shape_against_payload() {
        let m = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let c = m.to_content();
        assert_eq!(Matrix::from_content(&c).expect("roundtrip"), m);
        let lying = Content::Map(vec![
            ("rows".to_owned(), 2usize.to_content()),
            ("cols".to_owned(), 3usize.to_content()),
            ("data".to_owned(), vec![1.0f32; 4].to_content()),
        ]);
        let err = Matrix::from_content(&lying).expect_err("short payload");
        assert!(err.to_string().contains("2x3"));
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= limit + 1e-6));
    }
}
