//! Dense row-major `f32` matrix used throughout the neural substrate.
//!
//! The matrix is deliberately minimal: it supports exactly the operations the
//! autodiff tape ([`crate::tape`]) and the sequence models need, with shape
//! checks on every binary operation. All storage is a flat `Vec<f32>` in
//! row-major order.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use mdes_nn::Matrix;
/// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix with elements drawn uniformly from `[-limit, limit]`.
    pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialization for a layer
    /// mapping `rows` inputs to `cols` outputs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other` using an i-k-j loop order for cache
    /// friendliness.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Computes `self^T * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Computes `self * other^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise addition in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Returns `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns element-wise product `self ⊙ other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Squared Frobenius norm (sum of squared elements).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Index of the maximum element of row `r` (first occurrence on ties).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns or `r` is out of bounds.
    pub fn argmax_row(&self, r: usize) -> usize {
        assert!(self.cols > 0, "argmax_row on matrix with zero columns");
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = row[0];
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Row-wise softmax, returning a new matrix whose rows sum to one.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(5, 3, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::uniform(3, 5, 2.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_and_add() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn argmax_row_picks_max() {
        let a = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 3.0, 2.0, 1.0]);
        assert_eq!(a.argmax_row(0), 1);
        assert_eq!(a.argmax_row(1), 0);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= limit + 1e-6));
    }
}
