//! First-order optimizers operating on a [`ParamSet`].

use crate::matrix::Matrix;
use crate::tape::ParamSet;
use serde::{Deserialize, Serialize};

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and standard
    /// moment coefficients (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Learning rate currently in effect.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update using the gradients accumulated in `params`, then
    /// leaves the gradients untouched (call [`ParamSet::zero_grads`] before
    /// the next accumulation).
    pub fn step(&mut self, params: &mut ParamSet) {
        if self.m.len() != params.len() {
            self.m = (0..params.len())
                .map(|i| Matrix::zeros(params.value(i).rows(), params.value(i).cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            // Split borrows: grads are read-only here, values are written.
            let g = params.grad(i).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mj, vj), &gj) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
            }
            let value = params.value_mut(i);
            for ((pj, &mj), &vj) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mj / b1t;
                let v_hat = vj / b2t;
                *pj -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies `value -= lr * grad` for every parameter.
    pub fn step(&self, params: &mut ParamSet) {
        for i in 0..params.len() {
            let g = params.grad(i).clone();
            let value = params.value_mut(i);
            for (pj, &gj) in value.data_mut().iter_mut().zip(g.data()) {
                *pj -= self.lr * gj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimizing a simple quadratic-ish objective should drive the loss down.
    fn train_loss_curve(mut step: impl FnMut(&mut ParamSet), params: &mut ParamSet) -> (f32, f32) {
        let target = [2usize, 0, 1];
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..200 {
            let mut tape = Tape::new();
            let xi = tape.leaf(x.clone());
            let w = tape.param(params, 0);
            let logits = tape.matmul(xi, w);
            let loss = tape.cross_entropy(logits, &target);
            let grads = tape.backward(loss);
            params.zero_grads();
            tape.accumulate_param_grads(&grads, params);
            step(params);
            let l = tape.value(loss).get(0, 0);
            if it == 0 {
                first = l;
            }
            last = l;
        }
        (first, last)
    }

    #[test]
    fn adam_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut params = ParamSet::new();
        params.add(Matrix::uniform(2, 3, 0.1, &mut rng));
        let mut adam = Adam::new(0.05);
        let (first, last) = train_loss_curve(|p| adam.step(p), &mut params);
        assert!(
            last < first * 0.2,
            "adam failed to optimize: {first} -> {last}"
        );
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = ParamSet::new();
        params.add(Matrix::uniform(2, 3, 0.1, &mut rng));
        let sgd = Sgd::new(0.5);
        let (first, last) = train_loss_curve(|p| sgd.step(p), &mut params);
        assert!(
            last < first * 0.5,
            "sgd failed to optimize: {first} -> {last}"
        );
    }

    #[test]
    fn adam_lr_accessors() {
        let mut adam = Adam::new(0.01);
        assert_eq!(adam.lr(), 0.01);
        adam.set_lr(0.001);
        assert_eq!(adam.lr(), 0.001);
    }
}
