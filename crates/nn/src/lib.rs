//! `mdes-nn` — a minimal, dependency-light neural substrate for the `mdes`
//! framework.
//!
//! The crate provides everything the paper's neural machine translation model
//! needs, built from scratch:
//!
//! * [`Matrix`] — dense row-major `f32` matrices,
//! * [`Tape`] / [`ParamSet`] — define-by-run reverse-mode autodiff,
//! * [`LstmLayer`] / [`LstmStack`] — LSTM recurrences on the tape,
//! * [`Adam`] / [`Sgd`] — optimizers,
//! * [`Seq2Seq`] — encoder–decoder LSTM with Luong global attention, teacher
//!   forcing and greedy decoding.
//!
//! # Example
//!
//! Train a tiny model that learns to shift every token by one:
//!
//! ```
//! use mdes_nn::{Seq2Seq, Seq2SeqConfig};
//!
//! # fn main() -> Result<(), mdes_nn::NnError> {
//! let pairs = vec![
//!     (vec![2, 3, 4], vec![3, 4, 5]),
//!     (vec![4, 2, 3], vec![5, 3, 4]),
//! ];
//! let cfg = Seq2SeqConfig { train_steps: 30, ..Seq2SeqConfig::default() };
//! let mut model = Seq2Seq::new(6, 6, 1, cfg);
//! model.fit(&pairs)?;
//! let hyp = model.translate(&[2, 3, 4], 3)?;
//! assert_eq!(hyp.len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
pub mod gru;
pub mod infer;
pub mod lstm;
pub mod matrix;
pub mod optim;
pub mod quant;
pub mod reference;
pub mod seq2seq;
pub mod tape;

pub use error::NnError;
pub use gru::{GruLayer, GruStack};
pub use infer::{InferArena, InferCtx, InferState, ModelSpec, PackedCell};
pub use lstm::{LstmLayer, LstmStack};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use quant::{QMatrix, QuantMode, QuantReport};
pub use seq2seq::{AttentionKind, CellKind, Seq2Seq, Seq2SeqConfig};
pub use tape::{ParamSet, Tape, TensorId};
