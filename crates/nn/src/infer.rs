//! Tape-free inference engine for the seq2seq model.
//!
//! [`crate::Seq2Seq`]'s training path runs on the autodiff [`crate::tape::Tape`],
//! which records an op node, allocates (or pools) an output buffer, and keeps
//! backprop bookkeeping for every operation. None of that is needed at
//! serving time: online detection (Algorithm 2) only ever runs forward. This
//! module re-implements the forward pass — embedding lookup, fused-gate
//! LSTM/GRU steps, Luong attention, and the output projection — against a
//! reusable per-context scratch arena:
//!
//! * weights are packed **once** per model into a [`ModelSpec`] (the
//!   `[wx; wh]` fused-GEMM operands that the tape re-concatenates on every
//!   bind), and
//! * every intermediate lives in a pre-sized [`InferCtx`] buffer, so a decode
//!   step performs no heap allocation in the steady state (the first call at
//!   a given batch/sequence shape sizes the arena; later calls reuse it).
//!
//! **Bit parity.** The engine is not "close to" the tape — it is exactly the
//! tape's forward arithmetic, op for op: GEMMs go through
//! [`Matrix::matmul_into`] (which routes to `reference-kernels` under that
//! feature, same as the tape), nonlinearities through
//! [`crate::matrix::sigmoid_slice`] / [`crate::matrix::tanh_slice`] applied to
//! the same contiguous buffers the tape slices out, and reductions (softmax,
//! attention scores, state updates) replicate the tape's loop order and
//! rounding sequence. The tape path stays compiled as the parity oracle
//! (`Seq2Seq::translate_batch_tape` and friends, mirroring
//! [`crate::reference`]), and `tests/infer_parity.rs` asserts bit-identical
//! output under both kernel families.

use crate::matrix::{sigmoid_slice, tanh_slice, Matrix};
use crate::quant::{QMatrix, QuantMode, QuantReport};
use crate::NnError;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Forward-only packed weights of one recurrent layer.
///
/// The input and hidden weight blocks are pre-stacked (input block on top)
/// into the single fused-gate GEMM operand that the tape builds with
/// `concat_rows` on every bind.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PackedCell {
    /// LSTM layer with gate columns laid out `[i | f | g | o]`.
    Lstm {
        /// Packed `[wx; wh]`, shape `(input + hidden) x 4H`. Possibly
        /// quantized; biases stay f32 (they are a rounding-error's worth of
        /// bytes and an outsized share of the accuracy).
        w: QMatrix,
        /// Gate bias, `1 x 4H`.
        b: Matrix,
        /// Hidden units.
        hidden: usize,
    },
    /// GRU layer with gate columns laid out `[r | z]`.
    Gru {
        /// Packed `[wx_gates; wh_gates]`, shape `(input + hidden) x 2H`.
        w_gates: QMatrix,
        /// Gate bias, `1 x 2H`.
        b_gates: Matrix,
        /// Packed `[wx_cand; wh_cand]`, shape `(input + hidden) x H`.
        w_cand: QMatrix,
        /// Candidate bias, `1 x H`.
        b_cand: Matrix,
        /// Hidden units.
        hidden: usize,
    },
}

impl PackedCell {
    fn hidden(&self) -> usize {
        match self {
            PackedCell::Lstm { hidden, .. } | PackedCell::Gru { hidden, .. } => *hidden,
        }
    }

    fn is_lstm(&self) -> bool {
        matches!(self, PackedCell::Lstm { .. })
    }

    /// Approximate heap footprint of the packed weights in bytes.
    pub fn approx_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        match self {
            PackedCell::Lstm { w, b, .. } => w.approx_bytes() + std::mem::size_of_val(b.data()),
            PackedCell::Gru {
                w_gates,
                b_gates,
                w_cand,
                b_cand,
                ..
            } => {
                w_gates.approx_bytes()
                    + w_cand.approx_bytes()
                    + (b_gates.data().len() + b_cand.data().len()) * f
            }
        }
    }

    /// Re-encodes the weight matrices in `mode`, tracking the largest
    /// elementwise error into `max_err`.
    fn quantize(&self, mode: QuantMode, max_err: &mut f64) -> Result<PackedCell, NnError> {
        Ok(match self {
            PackedCell::Lstm { w, b, hidden } => PackedCell::Lstm {
                w: requantize(w, mode, max_err)?,
                b: b.clone(),
                hidden: *hidden,
            },
            PackedCell::Gru {
                w_gates,
                b_gates,
                w_cand,
                b_cand,
                hidden,
            } => PackedCell::Gru {
                w_gates: requantize(w_gates, mode, max_err)?,
                b_gates: b_gates.clone(),
                w_cand: requantize(w_cand, mode, max_err)?,
                b_cand: b_cand.clone(),
                hidden: *hidden,
            },
        })
    }
}

/// Re-encodes one weight operand (through f32 if it was already quantized),
/// folding its reconstruction error into `max_err`.
fn requantize(w: &QMatrix, mode: QuantMode, max_err: &mut f64) -> Result<QMatrix, NnError> {
    let full = w.dequantize();
    let q = QMatrix::quantize(&full, mode)?;
    *max_err = max_err.max(q.max_abs_error(&full));
    Ok(q)
}

/// Stacks `top` above `bottom` — the tape's `concat_rows`, used to pack the
/// separate input/hidden weights into one fused GEMM operand.
pub fn pack_rows(top: &Matrix, bottom: &Matrix) -> Matrix {
    assert_eq!(top.cols(), bottom.cols(), "pack_rows column mismatch");
    let mut out = Matrix::zeros(top.rows() + bottom.rows(), top.cols());
    let split = top.data().len();
    out.data_mut()[..split].copy_from_slice(top.data());
    out.data_mut()[split..].copy_from_slice(bottom.data());
    out
}

/// Everything the engine needs from a trained [`crate::Seq2Seq`]: owned
/// weight copies (recurrent layers pre-packed) plus decoding
/// hyper-parameters.
///
/// A `ModelSpec` is the model's *frozen serving artifact*: produced by
/// [`crate::Seq2Seq::freeze`], it carries no tape, optimizer moments or
/// gradient buffers, serializes compactly, and decodes bit-identically to
/// the tape oracle through an [`InferArena`] (pinned by
/// `tests/infer_parity.rs`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Source embedding table, `src_vocab x E`.
    pub src_emb: QMatrix,
    /// Target embedding table, `tgt_vocab x E`.
    pub tgt_emb: QMatrix,
    /// Encoder layers, bottom first.
    pub encoder: Vec<PackedCell>,
    /// Decoder layers, bottom first.
    pub decoder: Vec<PackedCell>,
    /// Bilinear attention weight (`General` attention only), `H x H`.
    pub w_a: Option<QMatrix>,
    /// Attentional combination weight, `2H x H`.
    pub w_c: QMatrix,
    /// Attentional combination bias, `1 x H`.
    pub b_c: Matrix,
    /// Output projection, `H x V`.
    pub w_out: QMatrix,
    /// Output bias, `1 x V`.
    pub b_out: Matrix,
    /// Hidden units per layer.
    pub hidden: usize,
    /// Luong input feeding: the previous attentional hidden state is
    /// concatenated to the decoder input.
    pub input_feeding: bool,
    /// Target begin-of-sentence token fed at step zero.
    pub bos: usize,
}

impl ModelSpec {
    /// Source vocabulary size (rows of the source embedding table).
    pub fn src_vocab(&self) -> usize {
        self.src_emb.rows()
    }

    /// Target vocabulary size (rows of the target embedding table).
    pub fn tgt_vocab(&self) -> usize {
        self.tgt_emb.rows()
    }

    /// Approximate heap footprint of the frozen weights in bytes — the
    /// per-model cost of holding this artifact in a serving snapshot.
    pub fn approx_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        let mut bytes = self.src_emb.approx_bytes()
            + self.tgt_emb.approx_bytes()
            + self.w_c.approx_bytes()
            + self.w_out.approx_bytes()
            + (self.b_c.data().len() + self.b_out.data().len()) * f;
        if let Some(w_a) = &self.w_a {
            bytes += w_a.approx_bytes();
        }
        bytes += self
            .encoder
            .iter()
            .chain(&self.decoder)
            .map(PackedCell::approx_bytes)
            .sum::<usize>();
        bytes
    }

    /// The weight encoding of this artifact.
    ///
    /// Weights are only ever re-encoded together (by [`ModelSpec::quantize`]),
    /// so the output projection's mode speaks for all of them; a debug
    /// assertion checks the invariant on the embedding tables.
    pub fn quant_mode(&self) -> QuantMode {
        debug_assert_eq!(self.w_out.mode(), self.src_emb.mode());
        debug_assert_eq!(self.w_out.mode(), self.tgt_emb.mode());
        self.w_out.mode()
    }

    /// Re-encodes every weight matrix in `mode` (via f32 if already
    /// quantized), leaving biases and hyper-parameters untouched.
    ///
    /// Returns the quantized spec plus a [`QuantReport`] with the largest
    /// elementwise weight error — the serving layer folds this into its
    /// calibration record and refuses artifacts that drift past the declared
    /// bound.
    ///
    /// Fails with [`NnError::NonFiniteWeight`] if any weight is NaN or
    /// infinite.
    pub fn quantize(&self, mode: QuantMode) -> Result<(ModelSpec, QuantReport), NnError> {
        let mut max_err = 0.0f64;
        let mut matrices = 0usize;
        let mut q = |w: &QMatrix| -> Result<QMatrix, NnError> {
            matrices += 1;
            requantize(w, mode, &mut max_err)
        };
        let src_emb = q(&self.src_emb)?;
        let tgt_emb = q(&self.tgt_emb)?;
        let w_a = self.w_a.as_ref().map(&mut q).transpose()?;
        let w_c = q(&self.w_c)?;
        let w_out = q(&self.w_out)?;
        let mut cells = |layers: &[PackedCell]| -> Result<Vec<PackedCell>, NnError> {
            layers
                .iter()
                .map(|c| {
                    matrices += match c {
                        PackedCell::Lstm { .. } => 1,
                        PackedCell::Gru { .. } => 2,
                    };
                    c.quantize(mode, &mut max_err)
                })
                .collect()
        };
        let encoder = cells(&self.encoder)?;
        let decoder = cells(&self.decoder)?;
        let spec = ModelSpec {
            src_emb,
            tgt_emb,
            encoder,
            decoder,
            w_a,
            w_c,
            b_c: self.b_c.clone(),
            w_out,
            b_out: self.b_out.clone(),
            hidden: self.hidden,
            input_feeding: self.input_feeding,
            bos: self.bos,
        };
        Ok((
            spec,
            QuantReport {
                mode,
                max_weight_error: max_err,
                matrices,
            },
        ))
    }
}

/// Recurrent state carried across decode steps: per-layer hidden (and, for
/// LSTM, cell) matrices plus the fed-back attentional hidden state.
///
/// Cloneable so beam search can branch hypotheses; all matrices are
/// `B x H`.
#[derive(Clone, Debug, Default)]
pub struct InferState {
    h: Vec<Matrix>,
    /// LSTM cell states; empty for GRU.
    c: Vec<Matrix>,
    att: Matrix,
    has_att: bool,
}

impl InferState {
    fn reset(&mut self, layers: &[PackedCell], batch: usize) {
        let n = layers.len();
        let hidden = layers[0].hidden();
        let n_cells = if layers[0].is_lstm() { n } else { 0 };
        self.h.resize_with(n, Matrix::default);
        self.c.resize_with(n_cells, Matrix::default);
        for m in self.h.iter_mut().chain(self.c.iter_mut()) {
            shape_to(m, batch, hidden);
            m.data_mut().fill(0.0);
        }
        self.has_att = false;
    }

    fn copy_from(&mut self, src: &InferState) {
        self.h.resize_with(src.h.len(), Matrix::default);
        self.c.resize_with(src.c.len(), Matrix::default);
        for (dst, s) in self.h.iter_mut().zip(&src.h) {
            assign(dst, s);
        }
        for (dst, s) in self.c.iter_mut().zip(&src.c) {
            assign(dst, s);
        }
        self.has_att = false;
    }
}

/// Reused intermediate buffers. Each field is resized on first use at a given
/// shape and then reused verbatim; in the steady state no buffer reallocates.
#[derive(Debug, Default)]
struct Scratch {
    /// Step input: embeddings, plus the fed-back attentional state under
    /// input feeding.
    x: Matrix,
    /// Fused GEMM input `[x | h]` (also `[x | r ⊙ h]` for the GRU candidate).
    xh: Matrix,
    /// Gate pre-activations, `B x 4H` (LSTM) or `B x 2H` (GRU).
    z: Matrix,
    /// Contiguous copy of one gate block before its nonlinearity (mirrors the
    /// tape's `slice_cols`, so the activation kernels see the same buffer
    /// extents as on the tape).
    gate_pre: Matrix,
    /// Activated gates: i/f/g/o for LSTM; ga = r, gb = z for GRU.
    ga: Matrix,
    /// See [`Scratch::ga`].
    gb: Matrix,
    /// See [`Scratch::ga`].
    gc: Matrix,
    /// See [`Scratch::ga`].
    go: Matrix,
    /// `tanh(c)` (LSTM) / candidate state (GRU).
    tc: Matrix,
    /// `r ⊙ h` (GRU only).
    rh: Matrix,
    /// Attention query `h_t W_a` (General attention only).
    query: Matrix,
    /// Attention scores, then weights after in-place softmax, `B x S`.
    scores: Matrix,
    /// Attention context vector, `B x H`.
    ctx: Matrix,
    /// `[context | h_top]`, `B x 2H`.
    cat: Matrix,
    /// Pre-activation of the attentional hidden state, `B x H`.
    att_pre: Matrix,
    /// Output logits, `B x V`.
    logits: Matrix,
}

/// A model-independent inference arena: every reusable buffer the forward
/// pass needs, with the weights supplied per call as a [`ModelSpec`].
///
/// One arena can serve any number of models sequentially — a serving worker
/// holds one arena and decodes whichever pair model the scheduler hands it,
/// instead of every model (or every stream) owning a private scratch set.
/// Callers must validate tokens/shapes first (as
/// [`crate::Seq2Seq::translate_batch`] does) — the engine indexes embedding
/// tables directly.
#[derive(Debug, Default)]
pub struct InferArena {
    /// Per-step top-layer encoder hidden states; `enc_len` entries are live.
    enc_hs: Vec<Matrix>,
    enc_len: usize,
    /// Encoder final state (the decoder's initial state).
    enc_final: InferState,
    /// Greedy-decode state, reused across `translate_batch` calls.
    greedy: InferState,
    /// Previous-token buffer for greedy decoding.
    prev: Vec<usize>,
    scratch: Scratch,
}

impl InferArena {
    /// An empty arena; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a batch of equal-length source sentences with `spec`'s
    /// weights, leaving the per-step top-layer hidden states and the final
    /// state in the arena.
    pub fn encode(&mut self, spec: &ModelSpec, srcs: &[&[usize]]) {
        let batch = srcs.len();
        let steps = srcs[0].len();
        let mut state = std::mem::take(&mut self.enc_final);
        state.reset(&spec.encoder, batch);
        if self.enc_hs.len() < steps {
            self.enc_hs.resize_with(steps, Matrix::default);
        }
        self.enc_len = steps;
        let embed = spec.src_emb.cols();
        for t in 0..steps {
            let scr = &mut self.scratch;
            shape_to(&mut scr.x, batch, embed);
            for (r, s) in srcs.iter().enumerate() {
                spec.src_emb.copy_row_into(s[t], scr.x.row_mut(r));
            }
            step_stack(&spec.encoder, scr, &mut state);
            assign(
                &mut self.enc_hs[t],
                state.h.last().expect("non-empty stack"),
            );
        }
        self.enc_final = state;
    }

    /// Copies the encoder final state into `out` (reusing its buffers) as
    /// the decoder's initial state.
    pub fn start_state(&self, out: &mut InferState) {
        out.copy_from(&self.enc_final);
    }

    /// One decoder step over the most recently encoded batch: embeds `prev`,
    /// advances the stack, attends, and leaves the logits in the arena
    /// ([`InferArena::logits`]). `state` is updated in place. `spec` must be
    /// the model the last [`InferArena::encode`] ran with.
    pub fn decode_step(&mut self, spec: &ModelSpec, prev: &[usize], state: &mut InferState) {
        let batch = prev.len();
        let scr = &mut self.scratch;
        let embed = spec.tgt_emb.cols();
        let hd = spec.hidden;
        let in_dim = if spec.input_feeding {
            embed + hd
        } else {
            embed
        };
        shape_to(&mut scr.x, batch, in_dim);
        for (r, &tok) in prev.iter().enumerate() {
            let row = scr.x.row_mut(r);
            spec.tgt_emb.copy_row_into(tok, &mut row[..embed]);
            if spec.input_feeding {
                if state.has_att {
                    row[embed..].copy_from_slice(state.att.row(r));
                } else {
                    row[embed..].fill(0.0);
                }
            }
        }
        step_stack(&spec.decoder, scr, state);
        attend(spec, scr, state, &self.enc_hs[..self.enc_len]);
    }

    /// Logits of the last [`InferArena::decode_step`], `B x V`.
    pub fn logits(&self) -> &Matrix {
        &self.scratch.logits
    }

    /// Greedy batched translation with `spec`'s weights — the engine-side
    /// body of [`crate::Seq2Seq::translate_batch`]. Inputs must be
    /// pre-validated.
    pub fn translate_batch(
        &mut self,
        spec: &ModelSpec,
        srcs: &[&[usize]],
        out_len: usize,
    ) -> Vec<Vec<usize>> {
        let batch = srcs.len();
        self.encode(spec, srcs);
        let mut state = std::mem::take(&mut self.greedy);
        self.start_state(&mut state);
        let mut prev = std::mem::take(&mut self.prev);
        prev.clear();
        prev.resize(batch, spec.bos);
        let mut out = vec![Vec::with_capacity(out_len); batch];
        for _ in 0..out_len {
            self.decode_step(spec, &prev, &mut state);
            for (b, o) in out.iter_mut().enumerate() {
                o.push(self.scratch.logits.argmax_row(b));
            }
            for (p, o) in prev.iter_mut().zip(&out) {
                *p = *o.last().expect("pushed above");
            }
        }
        self.greedy = state;
        self.prev = prev;
        out
    }
}

/// A per-model inference context: packed weights plus a private
/// [`InferArena`].
///
/// Create once per trained model ([`InferCtx::new`]) and reuse across decode
/// steps and across pushes. This is the training-side convenience wrapper
/// used by [`crate::Seq2Seq`]'s cached engine; serving paths that multiplex
/// many models over few workers hold [`InferArena`]s directly and pass each
/// model's [`ModelSpec`] per call.
#[derive(Debug)]
pub struct InferCtx {
    spec: ModelSpec,
    arena: InferArena,
}

impl InferCtx {
    /// Builds a context around pre-packed weights.
    pub fn new(spec: ModelSpec) -> Self {
        Self {
            spec,
            arena: InferArena::new(),
        }
    }

    /// The packed model weights.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Encodes a batch of equal-length source sentences, leaving the
    /// per-step top-layer hidden states and the final state in the context.
    pub fn encode(&mut self, srcs: &[&[usize]]) {
        self.arena.encode(&self.spec, srcs);
    }

    /// Copies the encoder final state into `out` (reusing its buffers) as
    /// the decoder's initial state.
    pub fn start_state(&self, out: &mut InferState) {
        self.arena.start_state(out);
    }

    /// One decoder step over the most recently encoded batch: embeds `prev`,
    /// advances the stack, attends, and leaves the logits in the context
    /// ([`InferCtx::logits`]). `state` is updated in place.
    pub fn decode_step(&mut self, prev: &[usize], state: &mut InferState) {
        self.arena.decode_step(&self.spec, prev, state);
    }

    /// Logits of the last [`InferCtx::decode_step`], `B x V`.
    pub fn logits(&self) -> &Matrix {
        self.arena.logits()
    }

    /// Greedy batched translation — the engine-side body of
    /// [`crate::Seq2Seq::translate_batch`]. Inputs must be pre-validated.
    pub fn translate_batch(&mut self, srcs: &[&[usize]], out_len: usize) -> Vec<Vec<usize>> {
        self.arena.translate_batch(&self.spec, srcs, out_len)
    }
}

/// Advances every layer of a packed stack one step, updating `state` in
/// place. Layer 0 consumes `scr.x`; layer `l` consumes layer `l - 1`'s fresh
/// hidden state, exactly like the tape's stack step.
fn step_stack(layers: &[PackedCell], scr: &mut Scratch, state: &mut InferState) {
    let Scratch {
        x,
        xh,
        z,
        gate_pre,
        ga,
        gb,
        gc,
        go,
        tc,
        rh,
        ..
    } = scr;
    for (l, cell) in layers.iter().enumerate() {
        let batch = state.h[l].rows();
        match cell {
            PackedCell::Lstm { w, b, hidden } => {
                let hd = *hidden;
                let in_dim = w.rows() - hd;
                // xh = [input | h] — the tape's concat_cols.
                shape_to(xh, batch, in_dim + hd);
                for r in 0..batch {
                    let input_row = if l == 0 {
                        x.row(r)
                    } else {
                        state.h[l - 1].row(r)
                    };
                    let row = xh.row_mut(r);
                    row[..in_dim].copy_from_slice(input_row);
                    row[in_dim..].copy_from_slice(state.h[l].row(r));
                }
                shape_to(z, batch, 4 * hd);
                xh.matmul_q_into(w, z);
                add_row_inplace(z, b);
                // Gate blocks copied out contiguously (the tape's
                // slice_cols), then activated whole-buffer like the tape.
                copy_cols(z, 0, hd, gate_pre);
                shape_to(ga, batch, hd);
                sigmoid_slice(gate_pre.data(), ga.data_mut());
                copy_cols(z, hd, hd, gate_pre);
                shape_to(gb, batch, hd);
                sigmoid_slice(gate_pre.data(), gb.data_mut());
                copy_cols(z, 2 * hd, hd, gate_pre);
                shape_to(gc, batch, hd);
                tanh_slice(gate_pre.data(), gc.data_mut());
                copy_cols(z, 3 * hd, hd, gate_pre);
                shape_to(go, batch, hd);
                sigmoid_slice(gate_pre.data(), go.data_mut());
                // c' = f ⊙ c + i ⊙ g, h' = o ⊙ tanh(c'), rounding exactly as
                // the tape's hadamard/add sequence.
                let cd = state.c[l].data_mut();
                let (id, fd, gd) = (ga.data(), gb.data(), gc.data());
                for e in 0..cd.len() {
                    let fc = fd[e] * cd[e];
                    let ig = id[e] * gd[e];
                    cd[e] = fc + ig;
                }
                shape_to(tc, batch, hd);
                tanh_slice(state.c[l].data(), tc.data_mut());
                let hd_out = state.h[l].data_mut();
                let (od, td) = (go.data(), tc.data());
                for e in 0..hd_out.len() {
                    hd_out[e] = od[e] * td[e];
                }
            }
            PackedCell::Gru {
                w_gates,
                b_gates,
                w_cand,
                b_cand,
                hidden,
            } => {
                let hd = *hidden;
                let in_dim = w_gates.rows() - hd;
                shape_to(xh, batch, in_dim + hd);
                for r in 0..batch {
                    let input_row = if l == 0 {
                        x.row(r)
                    } else {
                        state.h[l - 1].row(r)
                    };
                    let row = xh.row_mut(r);
                    row[..in_dim].copy_from_slice(input_row);
                    row[in_dim..].copy_from_slice(state.h[l].row(r));
                }
                shape_to(z, batch, 2 * hd);
                xh.matmul_q_into(w_gates, z);
                add_row_inplace(z, b_gates);
                copy_cols(z, 0, hd, gate_pre);
                shape_to(ga, batch, hd); // r
                sigmoid_slice(gate_pre.data(), ga.data_mut());
                copy_cols(z, hd, hd, gate_pre);
                shape_to(gb, batch, hd); // z
                sigmoid_slice(gate_pre.data(), gb.data_mut());
                // rh = r ⊙ h, then the candidate GEMM over [x | rh].
                shape_to(rh, batch, hd);
                {
                    let (rd, hd_in, out) = (ga.data(), state.h[l].data(), rh.data_mut());
                    for e in 0..out.len() {
                        out[e] = rd[e] * hd_in[e];
                    }
                }
                for r in 0..batch {
                    let input_row = if l == 0 {
                        x.row(r)
                    } else {
                        state.h[l - 1].row(r)
                    };
                    let row = xh.row_mut(r);
                    row[..in_dim].copy_from_slice(input_row);
                    row[in_dim..].copy_from_slice(rh.row(r));
                }
                shape_to(gate_pre, batch, hd);
                xh.matmul_q_into(w_cand, gate_pre);
                add_row_inplace(gate_pre, b_cand);
                shape_to(tc, batch, hd);
                tanh_slice(gate_pre.data(), tc.data_mut());
                // h' = z ⊙ (h - c) + c, with the tape's scale/add rounding:
                // h - c is computed as h + (-1 · c), and IEEE negation is
                // bit-identical to multiplying by -1.
                let hd_out = state.h[l].data_mut();
                let (zd, cd) = (gb.data(), tc.data());
                for e in 0..hd_out.len() {
                    let h_minus_c = hd_out[e] + (-cd[e]);
                    let gated = zd[e] * h_minus_c;
                    hd_out[e] = gated + cd[e];
                }
            }
        }
    }
}

/// Luong attention and output projection over the encoder states, writing
/// the attentional hidden state into `state.att` and logits into
/// `scr.logits`. Mirrors the tape's `decode_step` tail op for op.
fn attend(spec: &ModelSpec, scr: &mut Scratch, state: &mut InferState, enc_hs: &[Matrix]) {
    let hd = spec.hidden;
    let InferState {
        h, att, has_att, ..
    } = state;
    let h_top = h.last().expect("non-empty stack");
    let batch = h_top.rows();
    let Scratch {
        query,
        scores,
        ctx,
        cat,
        att_pre,
        logits,
        ..
    } = scr;
    let q: &Matrix = match &spec.w_a {
        Some(w_a) => {
            shape_to(query, batch, hd);
            h_top.matmul_q_into(w_a, query);
            query
        }
        None => h_top,
    };
    // score(h_t, h_s) per encoder state — the tape's row_dot, with the same
    // left-to-right summation.
    let steps = enc_hs.len();
    shape_to(scores, batch, steps);
    for (s, hs) in enc_hs.iter().enumerate() {
        for r in 0..batch {
            let d: f32 = q.row(r).iter().zip(hs.row(r)).map(|(&x, &y)| x * y).sum();
            scores.set(r, s, d);
        }
    }
    // In-place softmax, replicating the tape's loop (max-subtract, std exp,
    // sum in iteration order, divide).
    for r in 0..batch {
        let row = scores.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    // context = Σ_s weight_s · h_s, accumulated in encoder-state order like
    // the tape's mul_col/add fold.
    shape_to(ctx, batch, hd);
    for (s, hs) in enc_hs.iter().enumerate() {
        for r in 0..batch {
            let w = scores.get(r, s);
            let crow = ctx.row_mut(r);
            if s == 0 {
                for (o, &v) in crow.iter_mut().zip(hs.row(r)) {
                    *o = v * w;
                }
            } else {
                for (o, &v) in crow.iter_mut().zip(hs.row(r)) {
                    *o += v * w;
                }
            }
        }
    }
    shape_to(cat, batch, 2 * hd);
    for r in 0..batch {
        let row = cat.row_mut(r);
        row[..hd].copy_from_slice(ctx.row(r));
        row[hd..].copy_from_slice(h_top.row(r));
    }
    shape_to(att_pre, batch, hd);
    cat.matmul_q_into(&spec.w_c, att_pre);
    add_row_inplace(att_pre, &spec.b_c);
    shape_to(att, batch, hd);
    tanh_slice(att_pre.data(), att.data_mut());
    *has_att = true;
    shape_to(logits, batch, spec.w_out.cols());
    att.matmul_q_into(&spec.w_out, logits);
    add_row_inplace(logits, &spec.b_out);
}

/// Resizes `m` to `rows x cols`, reusing its allocation when capacity
/// suffices. Contents are unspecified afterwards.
fn shape_to(m: &mut Matrix, rows: usize, cols: usize) {
    if m.shape() != (rows, cols) {
        let mut data = std::mem::take(m).into_data();
        data.resize(rows * cols, 0.0);
        *m = Matrix::from_vec(rows, cols, data);
    }
}

/// Copies `src` into `dst`, reusing `dst`'s allocation.
fn assign(dst: &mut Matrix, src: &Matrix) {
    shape_to(dst, src.rows(), src.cols());
    dst.data_mut().copy_from_slice(src.data());
}

/// In-place row-broadcast bias add — the tape's `add_row` values.
fn add_row_inplace(m: &mut Matrix, bias: &Matrix) {
    debug_assert_eq!(bias.shape(), (1, m.cols()));
    for r in 0..m.rows() {
        for (o, &b) in m.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
}

/// Copies columns `[start, start + width)` of `src` into `dst` — the tape's
/// `slice_cols`.
fn copy_cols(src: &Matrix, start: usize, width: usize, dst: &mut Matrix) {
    shape_to(dst, src.rows(), width);
    for r in 0..src.rows() {
        dst.row_mut(r)
            .copy_from_slice(&src.row(r)[start..start + width]);
    }
}

/// Lazily-built, serialization-skipped cache of a model's [`InferCtx`].
///
/// Stored inside [`crate::Seq2Seq`] behind `#[serde(skip)]`: a cloned or
/// deserialized model starts with an empty cache and rebuilds the context on
/// first use; training clears it (the packed weights would be stale).
/// The interior mutex makes cached inference available through `&self` and
/// keeps the model `Sync` for parallel detection.
#[derive(Default)]
pub struct InferCache(Mutex<Option<Box<InferCtx>>>);

impl InferCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` against the cached context, building it with `build` on
    /// first use.
    pub fn with<R>(
        &self,
        build: impl FnOnce() -> InferCtx,
        f: impl FnOnce(&mut InferCtx) -> R,
    ) -> R {
        let mut guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if mdes_obs::enabled() {
            mdes_obs::counter(
                if guard.is_some() {
                    "infer.cache_hit"
                } else {
                    "infer.cache_miss"
                },
                1,
            );
        }
        f(guard.get_or_insert_with(|| Box::new(build())))
    }

    /// Drops the cached context (call after any parameter update).
    pub fn clear(&self) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

impl Clone for InferCache {
    /// Cloning a model does not clone the cache — the clone rebuilds lazily.
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for InferCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let built = self.0.lock().map(|g| g.is_some()).unwrap_or(false);
        f.debug_struct("InferCache").field("built", &built).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_rows_stacks_in_order() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let p = pack_rows(&a, &b);
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn shape_to_reuses_capacity() {
        let mut m = Matrix::zeros(4, 4);
        let ptr = m.data().as_ptr();
        shape_to(&mut m, 2, 8);
        assert_eq!(m.shape(), (2, 8));
        assert_eq!(
            m.data().as_ptr(),
            ptr,
            "same-size reshape must not allocate"
        );
    }

    #[test]
    fn infer_cache_clone_is_empty_and_clear_drops() {
        let cache = InferCache::new();
        let spec = ModelSpec {
            src_emb: QMatrix::F32(Matrix::zeros(2, 2)),
            tgt_emb: QMatrix::F32(Matrix::zeros(2, 2)),
            encoder: vec![],
            decoder: vec![],
            w_a: None,
            w_c: QMatrix::F32(Matrix::zeros(4, 2)),
            b_c: Matrix::zeros(1, 2),
            w_out: QMatrix::F32(Matrix::zeros(2, 2)),
            b_out: Matrix::zeros(1, 2),
            hidden: 2,
            input_feeding: false,
            bos: 0,
        };
        cache.with(|| InferCtx::new(spec), |_| ());
        assert!(format!("{cache:?}").contains("true"));
        assert!(format!("{:?}", cache.clone()).contains("false"));
        cache.clear();
        assert!(format!("{cache:?}").contains("false"));
    }
}
