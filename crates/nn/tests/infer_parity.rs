//! Parity harness for the tape-free inference engine (`mdes_nn::infer`).
//!
//! The engine replicates the tape's forward arithmetic op for op, so its
//! output must match the tape oracle (`translate*_tape`) **bit for bit** —
//! not approximately — on any model configuration: both cell families, both
//! attention kinds, input feeding on/off, stacked layers, greedy single,
//! greedy batched, and beam decoding. The whole suite also runs under
//! `--features reference-kernels` in CI so both kernel families are checked
//! against the oracle.

use mdes_nn::{AttentionKind, CellKind, InferArena, ModelSpec, Seq2Seq, Seq2SeqConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A model with xavier-initialized (untrained) weights — parity is a
/// property of the arithmetic, not of the weight values, and skipping `fit`
/// keeps the proptest cases fast.
fn build_model(
    vocab: usize,
    cell: CellKind,
    attention: AttentionKind,
    input_feeding: bool,
    layers: usize,
    seed: u64,
) -> Seq2Seq {
    let cfg = Seq2SeqConfig {
        embed_dim: 6,
        hidden: 7,
        layers,
        cell,
        attention,
        input_feeding,
        seed,
        ..Seq2SeqConfig::default()
    };
    Seq2Seq::new(vocab, vocab, 0, cfg)
}

fn random_sentence(len: usize, vocab: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..len).map(|_| rng.gen_range(0..vocab)).collect()
}

fn cell_from(flag: u8) -> CellKind {
    if flag != 0 {
        CellKind::Gru
    } else {
        CellKind::Lstm
    }
}

fn attention_from(flag: u8) -> AttentionKind {
    if flag != 0 {
        AttentionKind::General
    } else {
        AttentionKind::Dot
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy single-sentence decoding: engine bit-identical to the tape.
    /// Two rounds per case so the second run exercises the warm scratch
    /// arena, not just the freshly-built context.
    #[test]
    fn greedy_matches_tape_exactly(
        gru in 0u8..=1,
        general in 0u8..=1,
        feeding in 0u8..=1,
        layers in 1usize..=2,
        src_len in 1usize..=6,
        out_len in 1usize..=6,
        vocab in 3usize..=9,
        seed in 0u64..1 << 32,
    ) {
        let model = build_model(vocab, cell_from(gru), attention_from(general), feeding != 0, layers, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..2 {
            let src = random_sentence(src_len, vocab, &mut rng);
            let engine = model.translate(&src, out_len).expect("engine");
            let tape = model.translate_tape(&src, out_len).expect("tape");
            prop_assert_eq!(engine, tape);
        }
    }

    /// Batched greedy decoding: engine bit-identical to the tape, including
    /// batch-size changes between calls on the same context.
    #[test]
    fn batched_matches_tape_exactly(
        gru in 0u8..=1,
        general in 0u8..=1,
        feeding in 0u8..=1,
        layers in 1usize..=2,
        src_len in 1usize..=5,
        out_len in 1usize..=5,
        batch in 1usize..=4,
        vocab in 3usize..=9,
        seed in 0u64..1 << 32,
    ) {
        let model = build_model(vocab, cell_from(gru), attention_from(general), feeding != 0, layers, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for round in 0..2 {
            let b = if round == 0 { batch } else { (batch % 4) + 1 };
            let sentences: Vec<Vec<usize>> =
                (0..b).map(|_| random_sentence(src_len, vocab, &mut rng)).collect();
            let srcs: Vec<&[usize]> = sentences.iter().map(Vec::as_slice).collect();
            let engine = model.translate_batch(&srcs, out_len).expect("engine");
            let tape = model.translate_batch_tape(&srcs, out_len).expect("tape");
            prop_assert_eq!(engine, tape);
        }
    }

    /// Beam decoding: engine bit-identical to the tape at widths 1–3.
    #[test]
    fn beam_matches_tape_exactly(
        gru in 0u8..=1,
        general in 0u8..=1,
        feeding in 0u8..=1,
        layers in 1usize..=2,
        src_len in 1usize..=5,
        out_len in 1usize..=5,
        beam_width in 1usize..=3,
        vocab in 3usize..=9,
        seed in 0u64..1 << 32,
    ) {
        let model = build_model(vocab, cell_from(gru), attention_from(general), feeding != 0, layers, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5678);
        let src = random_sentence(src_len, vocab, &mut rng);
        let engine = model.translate_beam(&src, out_len, beam_width).expect("engine");
        let tape = model.translate_beam_tape(&src, out_len, beam_width).expect("tape");
        prop_assert_eq!(engine, tape);
    }
}

/// Training after a translate must invalidate the packed weights: a stale
/// inference cache would silently keep decoding with the old parameters.
#[test]
fn refit_invalidates_inference_cache() {
    let pairs: Vec<(Vec<usize>, Vec<usize>)> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..20)
            .map(|_| {
                let src: Vec<usize> = (0..4).map(|_| rng.gen_range(1..6)).collect();
                let tgt: Vec<usize> = src.iter().map(|&t| (t + 1) % 6).collect();
                (src, tgt)
            })
            .collect()
    };
    let cfg = Seq2SeqConfig {
        embed_dim: 8,
        hidden: 8,
        train_steps: 15,
        ..Seq2SeqConfig::default()
    };
    let mut model = Seq2Seq::new(6, 6, 0, cfg);
    model.fit(&pairs).expect("fit");
    // Build the cache, then change the parameters by training further.
    let before = model.translate(&pairs[0].0, 4).expect("warm translate");
    assert_eq!(before, model.translate_tape(&pairs[0].0, 4).expect("tape"));
    model.fit(&pairs).expect("refit");
    let after = model
        .translate(&pairs[0].0, 4)
        .expect("translate after refit");
    assert_eq!(
        after,
        model
            .translate_tape(&pairs[0].0, 4)
            .expect("tape after refit"),
        "engine served stale weights after refit"
    );
}

/// A deserialized model (which starts with an empty cache) must agree with
/// the original on both paths.
#[test]
fn serde_roundtrip_engine_matches_tape() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = build_model(7, CellKind::Lstm, AttentionKind::General, true, 2, 42);
    let src = random_sentence(5, 7, &mut rng);
    let json = serde_json::to_string(&model).expect("serialize");
    let restored: Seq2Seq = serde_json::from_str(&json).expect("deserialize");
    let original = model.translate(&src, 5).expect("original");
    assert_eq!(original, restored.translate(&src, 5).expect("restored"));
    assert_eq!(original, restored.translate_tape(&src, 5).expect("tape"));
}

/// A frozen `ModelSpec`, round-tripped through serde and decoded through a
/// cold shared `InferArena`, must stay bit-identical to the tape oracle —
/// this is the serving-artifact contract, checked across both cell families
/// and both attention kinds.
#[test]
fn frozen_spec_roundtrip_matches_tape_exactly() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut arena = InferArena::new();
    for (i, (cell, attention, feeding)) in [
        (CellKind::Lstm, AttentionKind::Dot, false),
        (CellKind::Lstm, AttentionKind::General, true),
        (CellKind::Gru, AttentionKind::Dot, true),
        (CellKind::Gru, AttentionKind::General, false),
    ]
    .into_iter()
    .enumerate()
    {
        let model = build_model(8, cell, attention, feeding, 2, 100 + i as u64);
        let spec = model.freeze();
        let json = serde_json::to_string(&spec).expect("serialize spec");
        let restored: ModelSpec = serde_json::from_str(&json).expect("deserialize spec");
        assert_eq!(spec, restored, "freeze artifact must round-trip exactly");
        assert_eq!(restored.src_vocab(), 8);
        assert_eq!(restored.tgt_vocab(), 8);
        assert!(restored.approx_bytes() > 0);
        for _ in 0..2 {
            let sentences: Vec<Vec<usize>> =
                (0..3).map(|_| random_sentence(4, 8, &mut rng)).collect();
            let srcs: Vec<&[usize]> = sentences.iter().map(Vec::as_slice).collect();
            // The same warm arena serves every spec in turn, as a serving
            // worker would.
            let engine = arena.translate_batch(&restored, &srcs, 5);
            let tape = model.translate_batch_tape(&srcs, 5).expect("tape");
            assert_eq!(engine, tape, "frozen decode diverged from the tape");
        }
    }
}

/// The frozen artifact must be strictly smaller than the full training-state
/// model on the wire: freezing drops the tape, optimizer moments and
/// gradient buffers.
#[test]
fn frozen_spec_serializes_compactly() {
    let pairs: Vec<(Vec<usize>, Vec<usize>)> = {
        let mut rng = StdRng::seed_from_u64(23);
        (0..12)
            .map(|_| {
                let src: Vec<usize> = (0..4).map(|_| rng.gen_range(1..6)).collect();
                let tgt: Vec<usize> = src.iter().map(|&t| (t + 1) % 6).collect();
                (src, tgt)
            })
            .collect()
    };
    let cfg = Seq2SeqConfig {
        embed_dim: 8,
        hidden: 8,
        train_steps: 5,
        ..Seq2SeqConfig::default()
    };
    let mut model = Seq2Seq::new(6, 6, 0, cfg);
    model.fit(&pairs).expect("fit");
    let full = serde_json::to_string(&model).expect("serialize model");
    let frozen = serde_json::to_string(&model.freeze()).expect("serialize spec");
    assert!(
        frozen.len() * 2 < full.len(),
        "frozen artifact ({} bytes) should be well under half the full \
         training state ({} bytes)",
        frozen.len(),
        full.len()
    );
}
