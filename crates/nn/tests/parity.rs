//! Parity + property harness guarding the fast GEMM and fused-gate kernels.
//!
//! The blocked kernels in `matrix.rs` accumulate every output element in
//! ascending shared-index order, so they must match the naive loops in
//! [`mdes_nn::reference`] *bit for bit* on any input — the proptests below
//! assert exact equality over random shapes and values. Gate fusion
//! (`step` vs `step_unfused`) does reorder the sum over `[x | h]`, so the
//! recurrent parity tests use a `1e-5` tolerance instead, and a
//! finite-difference gradcheck pins down the fused backward pass.

use mdes_nn::gru::GruLayer;
use mdes_nn::lstm::{LstmLayer, LstmState};
use mdes_nn::{reference, Matrix, ParamSet, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random matrix with entries in `[-2, 2]`, including exact zeros (the old
/// kernels special-cased them) roughly once per sixteen entries.
fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0u32..16) == 0 {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `A (m x k) * B (k x n)` — fast kernel bit-identical to the reference.
    #[test]
    fn matmul_matches_reference_exactly(
        m in 1usize..=24, k in 1usize..=24, n in 1usize..=24, seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let fast = a.matmul(&b);
        let naive = reference::matmul(&a, &b);
        prop_assert_eq!(fast.data(), naive.data(), "matmul diverged at {}x{}x{}", m, k, n);
    }

    /// `A^T (k x m) * B (k x n)` — bit-identical.
    #[test]
    fn matmul_tn_matches_reference_exactly(
        m in 1usize..=24, k in 1usize..=24, n in 1usize..=24, seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(k, m, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let fast = a.matmul_tn(&b);
        let naive = reference::matmul_tn(&a, &b);
        prop_assert_eq!(fast.data(), naive.data(), "matmul_tn diverged at {}x{}x{}", m, k, n);
    }

    /// `A (m x c) * B^T (n x c)` — bit-identical.
    #[test]
    fn matmul_nt_matches_reference_exactly(
        m in 1usize..=24, c in 1usize..=24, n in 1usize..=24, seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, c, &mut rng);
        let b = random_matrix(n, c, &mut rng);
        let fast = a.matmul_nt(&b);
        let naive = reference::matmul_nt(&a, &b);
        prop_assert_eq!(fast.data(), naive.data(), "matmul_nt diverged at {}x{}x{}", m, c, n);
    }

    /// Fused LSTM step vs the two-GEMM oracle: `h` and `c` within `1e-5`.
    #[test]
    fn lstm_fused_step_matches_unfused(
        batch in 1usize..=6, input in 1usize..=8, hidden in 1usize..=8, seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let layer = LstmLayer::new(&mut params, input, hidden, &mut rng);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let x = tape.leaf(random_matrix(batch, input, &mut rng));
        let h0 = tape.leaf(random_matrix(batch, hidden, &mut rng));
        let c0 = tape.leaf(random_matrix(batch, hidden, &mut rng));
        let state = LstmState { h: h0, c: c0 };
        let fused = bound.step(&mut tape, x, state);
        let oracle = bound.step_unfused(&mut tape, x, state);
        let dh = max_abs_diff(tape.value(fused.h), tape.value(oracle.h));
        let dc = max_abs_diff(tape.value(fused.c), tape.value(oracle.c));
        prop_assert!(dh <= 1e-5, "fused h diverged by {dh}");
        prop_assert!(dc <= 1e-5, "fused c diverged by {dc}");
    }

    /// Fused GRU step vs the three-GEMM oracle: `h` within `1e-5`.
    #[test]
    fn gru_fused_step_matches_unfused(
        batch in 1usize..=6, input in 1usize..=8, hidden in 1usize..=8, seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let layer = GruLayer::new(&mut params, input, hidden, &mut rng);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let x = tape.leaf(random_matrix(batch, input, &mut rng));
        let h0 = tape.leaf(random_matrix(batch, hidden, &mut rng));
        let fused = bound.step(&mut tape, x, h0);
        let oracle = bound.step_unfused(&mut tape, x, h0);
        let dh = max_abs_diff(tape.value(fused), tape.value(oracle));
        prop_assert!(dh <= 1e-5, "fused GRU h diverged by {dh}");
    }
}

/// Cross-entropy loss after `steps` fused LSTM steps, as a pure function of
/// the parameters (fresh tape per call — this is the finite-difference
/// forward oracle).
fn lstm_loss(params: &ParamSet, layer: &LstmLayer, xs: &[Matrix], targets: &[usize]) -> f32 {
    let mut tape = Tape::new();
    let bound = layer.bind(&mut tape, params);
    let mut state = layer.zero_state(&mut tape, targets.len());
    for x in xs {
        let xid = tape.leaf(x.clone());
        state = bound.step(&mut tape, xid, state);
    }
    let loss = tape.cross_entropy(state.h, targets);
    tape.value(loss).get(0, 0)
}

/// Finite-difference gradcheck of the fused-gate backward pass: the analytic
/// gradient of every LSTM parameter (flowing through `ConcatRows` packing and
/// two recurrent steps) must match a central difference of the loss.
#[test]
fn lstm_fused_backward_matches_finite_differences() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut params = ParamSet::new();
    let layer = LstmLayer::new(&mut params, 3, 4, &mut rng);
    let xs: Vec<Matrix> = (0..2).map(|_| random_matrix(2, 3, &mut rng)).collect();
    let targets = [0usize, 2];

    // Analytic gradients via the recycling backward path.
    let mut tape = Tape::new();
    let bound = layer.bind(&mut tape, &params);
    let mut state = layer.zero_state(&mut tape, targets.len());
    for x in &xs {
        let xid = tape.leaf(x.clone());
        state = bound.step(&mut tape, xid, state);
    }
    let loss = tape.cross_entropy(state.h, &targets);
    params.zero_grads();
    tape.backward_accumulate(loss, &mut params);

    let eps = 1e-2f32;
    let mut checked = 0usize;
    for p in 0..params.len() {
        for idx in 0..params.value(p).data().len() {
            let orig = params.value(p).data()[idx];
            params.value_mut(p).data_mut()[idx] = orig + eps;
            let up = lstm_loss(&params, &layer, &xs, &targets);
            params.value_mut(p).data_mut()[idx] = orig - eps;
            let down = lstm_loss(&params, &layer, &xs, &targets);
            params.value_mut(p).data_mut()[idx] = orig;
            let fd = (up - down) / (2.0 * eps);
            let g = params.grad(p).data()[idx];
            assert!(
                (fd - g).abs() <= 1e-3 + 1e-2 * g.abs().max(fd.abs()),
                "param {p}[{idx}]: analytic {g} vs finite-difference {fd}"
            );
            checked += 1;
        }
    }
    // wx (3x16) + wh (4x16) + b (1x16).
    assert_eq!(checked, 128);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The polynomial sigmoid/tanh fast path stays within `1e-6` of the
    /// libm-exact reference on random inputs (the LSTM parity budget above
    /// is `1e-5`, so activation error is an order of magnitude below it).
    #[test]
    fn activations_match_reference_within_1e6(
        vals in proptest::collection::vec(-30.0f32..30.0, 1..200),
    ) {
        let mut fast = vec![0.0f32; vals.len()];
        let mut exact = vec![0.0f32; vals.len()];
        mdes_nn::matrix::sigmoid_slice(&vals, &mut fast);
        reference::sigmoid_slice(&vals, &mut exact);
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert!((f - e).abs() <= 1e-6, "sigmoid diverged: {} vs {}", f, e);
        }
        mdes_nn::matrix::tanh_slice(&vals, &mut fast);
        reference::tanh_slice(&vals, &mut exact);
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert!((f - e).abs() <= 1e-6, "tanh diverged: {} vs {}", f, e);
        }
    }
}

/// Saturation and extreme inputs: the fast activations must stay finite and
/// pinned to their asymptotes where libm saturates.
#[test]
fn activations_handle_extremes() {
    let xs = [-1e30f32, -500.0, -88.0, -17.0, 0.0, 17.0, 88.0, 500.0, 1e30];
    let mut sig = vec![0.0f32; xs.len()];
    let mut th = vec![0.0f32; xs.len()];
    mdes_nn::matrix::sigmoid_slice(&xs, &mut sig);
    mdes_nn::matrix::tanh_slice(&xs, &mut th);
    for (&x, (&s, &t)) in xs.iter().zip(sig.iter().zip(&th)) {
        assert!(
            s.is_finite() && (0.0..=1.0).contains(&s),
            "sigmoid({x}) = {s}"
        );
        assert!(
            t.is_finite() && (-1.0..=1.0).contains(&t),
            "tanh({x}) = {t}"
        );
        assert!((s - 1.0 / (1.0 + (-x).exp())).abs() <= 1e-6);
        assert!((t - x.tanh()).abs() <= 1e-6);
    }
    assert_eq!(sig[0], 0.0, "sigmoid(-1e30) must saturate to 0");
    assert_eq!(th[0], -1.0 + (th[0] + 1.0), "tanh(-1e30) finite");
    assert!(th[0] <= -0.999_999);
    assert!(th[8] >= 0.999_999);
}
