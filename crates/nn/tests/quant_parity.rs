//! Drift harness for the quantized kernel family (`mdes_nn::quant`).
//!
//! The f32 fast kernels are pinned bit-identical to the reference loops
//! (`tests/parity.rs`); the quantized path is **drift-bounded** instead.
//! This suite makes every bound explicit and proptests it:
//!
//! * f16 round-trip error within half an ulp (`|x|·2^-11`, absolute floor
//!   `2^-25` in the subnormal range), and never Inf/NaN;
//! * int8 reconstruction within half a per-row scale step
//!   (`max|row| / 254`) per element;
//! * quantized GEMM output within a rounding budget of the f32 product of
//!   the dequantized weights — the products are identical, so fast kernels
//!   (which may fuse multiply-adds) and the naive oracle may differ only by
//!   accumulated rounding, bounded via the absolute-value product;
//! * the embedding-lookup path (`copy_row_into`) bit-identical to
//!   `dequantize`;
//! * batch invariance on random shapes: decoding row `r` of a batch gives
//!   the same bits as decoding it alone (cross-session batching in the
//!   serving layer relies on this);
//! * end-to-end: a trained artifact re-encoded to f16/int8 must translate a
//!   held-out corpus with high BLEU agreement against its own f32 decode.
//!
//! CI runs this file under both the default and `reference-kernels` builds,
//! so the tiled AVX2/FMA kernels and the dequantize-and-accumulate oracle
//! satisfy the same bounds.

use mdes_nn::quant::{f16_to_f32, f32_to_f16};
use mdes_nn::{InferArena, Matrix, QMatrix, QuantMode, Seq2Seq, Seq2SeqConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `scale` decoded from a proptest integer: 0.1 .. ~12.8 — spans tiny rows
/// and rows near the int8 default-policy ceiling.
fn scale_from(raw: u32) -> f32 {
    0.1 + raw as f32 / 10.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f16 round-trip: error ≤ max(|x|·2^-11, 2^-25), always finite, and
    /// magnitudes beyond the f16 range saturate at ±65504 instead of Inf.
    #[test]
    fn f16_roundtrip_within_declared_bound(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            // Span subnormals through the saturation threshold.
            let exp = rng.gen_range(-30i32..20);
            let x = rng.gen_range(-1.0f32..1.0) * 2.0f32.powi(exp);
            let y = f16_to_f32(f32_to_f16(x));
            prop_assert!(y.is_finite(), "{x} decoded non-finite");
            if x.abs() >= 65504.0 {
                prop_assert_eq!(y.abs(), 65504.0, "{}", x);
            } else {
                let bound = (x.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-25));
                prop_assert!((x - y).abs() <= bound, "{} -> {} (bound {})", x, y, bound);
            }
        }
    }

    /// Int8 reconstruction: every element within half a scale step of the
    /// original, where the step is `max|row| / 127`.
    #[test]
    fn int8_reconstruction_within_half_step(
        rows in 1usize..12,
        cols in 1usize..48,
        raw_scale in 0u32..127,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::uniform(rows, cols, scale_from(raw_scale), &mut rng);
        let q = QMatrix::quantize(&m, QuantMode::Int8).expect("finite weights");
        let deq = q.dequantize();
        for r in 0..rows {
            let max_abs = m.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let half_step = f64::from(max_abs) / 254.0;
            for (c, (&a, &b)) in m.row(r).iter().zip(deq.row(r)).enumerate() {
                let err = (f64::from(a) - f64::from(b)).abs();
                prop_assert!(
                    err <= half_step * (1.0 + 1e-5) + 1e-9,
                    "({r},{c}): {a} vs {b}, err {err} > {half_step}"
                );
            }
        }
        // The aggregate report agrees with the per-row analytic bound.
        let global = f64::from(
            (0..rows)
                .map(|r| m.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs())))
                .fold(0.0f32, f32::max),
        );
        prop_assert!(q.max_abs_error(&m) <= global / 254.0 * (1.0 + 1e-5) + 1e-9);
    }

    /// Quantized GEMM vs the f32 product of the dequantized weights: the
    /// same multiplications in the same per-element ascending order, so the
    /// only admissible difference is accumulation rounding (the fast path
    /// may fuse multiply-adds). Budget: `4(k+1)·ε` of the absolute-value
    /// product, elementwise.
    #[test]
    fn qgemm_within_rounding_budget_of_dequantized_f32(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..72,
        raw_scale in 0u32..40,
        int8 in 0u8..=1,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, 1.0, &mut rng);
        let w = Matrix::uniform(k, n, scale_from(raw_scale), &mut rng);
        let mode = if int8 != 0 { QuantMode::Int8 } else { QuantMode::F16 };
        let q = QMatrix::quantize(&w, mode).expect("finite weights");
        let deq = q.dequantize();
        let mut want = Matrix::zeros(m, n);
        a.matmul_into(&deq, &mut want);
        let mut got = Matrix::zeros(m, n);
        a.matmul_q_into(&q, &mut got);
        let budget_per_product = 4.0 * (k as f64 + 1.0) * f64::from(f32::EPSILON);
        for i in 0..m {
            for j in 0..n {
                let absdot: f64 = (0..k)
                    .map(|p| f64::from(a.row(i)[p].abs()) * f64::from(deq.row(p)[j].abs()))
                    .sum();
                let err = (f64::from(got.row(i)[j]) - f64::from(want.row(i)[j])).abs();
                prop_assert!(
                    err <= budget_per_product * absdot + 1e-30,
                    "{mode} ({i},{j}): err {err} over budget {}",
                    budget_per_product * absdot
                );
            }
        }
    }

    /// The embedding-lookup path must agree with `dequantize` bit for bit.
    #[test]
    fn copy_row_into_matches_dequantize_exactly(
        rows in 1usize..10,
        cols in 1usize..40,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::uniform(rows, cols, 2.0, &mut rng);
        for mode in [QuantMode::F32, QuantMode::F16, QuantMode::Int8] {
            let q = QMatrix::quantize(&m, mode).expect("finite weights");
            let deq = q.dequantize();
            let mut row = vec![0.0f32; cols];
            for r in 0..rows {
                q.copy_row_into(r, &mut row);
                for (c, (&a, &b)) in row.iter().zip(deq.row(r)).enumerate() {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "{} ({},{})", mode, r, c);
                }
            }
        }
    }

    /// Batch invariance on random shapes: row `r` of a batched product is
    /// bit-identical to the same row computed in a batch of one — the
    /// property cross-session batched decode is built on.
    #[test]
    fn qgemm_is_batch_invariant(
        m in 2usize..9,
        k in 1usize..40,
        n in 1usize..70,
        int8 in 0u8..=1,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, 1.0, &mut rng);
        let w = Matrix::uniform(k, n, 1.0, &mut rng);
        let mode = if int8 != 0 { QuantMode::Int8 } else { QuantMode::F16 };
        let q = QMatrix::quantize(&w, mode).expect("finite weights");
        let mut full = Matrix::zeros(m, n);
        a.matmul_q_into(&q, &mut full);
        for r in 0..m {
            let single = Matrix::from_vec(1, k, a.row(r).to_vec());
            let mut one = Matrix::zeros(1, n);
            single.matmul_q_into(&q, &mut one);
            for (j, (&x, &y)) in one.row(0).iter().zip(full.row(r)).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} ({},{})", mode, r, j);
            }
        }
    }
}

/// End-to-end decode drift: a *trained* artifact (so logit gaps are real,
/// not random near-ties) re-encoded to f16/int8 must translate a held-out
/// corpus in near-perfect BLEU agreement with its own f32 decode, and the
/// quantization report must stay within the analytic weight-error bound.
#[test]
fn quantized_decode_agrees_with_f32_decode_in_bleu() {
    use mdes_bleu::{BleuStats, Smoothing};

    let vocab = 8usize;
    let pairs: Vec<(Vec<usize>, Vec<usize>)> = {
        let mut rng = StdRng::seed_from_u64(41);
        (0..24)
            .map(|_| {
                let src: Vec<usize> = (0..5).map(|_| rng.gen_range(1..vocab)).collect();
                let tgt: Vec<usize> = src.iter().map(|&t| (t % (vocab - 1)) + 1).collect();
                (src, tgt)
            })
            .collect()
    };
    let cfg = Seq2SeqConfig {
        embed_dim: 16,
        hidden: 16,
        train_steps: 40,
        ..Seq2SeqConfig::default()
    };
    let mut model = Seq2Seq::new(vocab, vocab, 0, cfg);
    model.fit(&pairs).expect("fit");
    let spec = model.freeze();

    let held_out: Vec<Vec<usize>> = {
        let mut rng = StdRng::seed_from_u64(43);
        (0..16)
            .map(|_| (0..5).map(|_| rng.gen_range(1..vocab)).collect())
            .collect()
    };
    let srcs: Vec<&[usize]> = held_out.iter().map(Vec::as_slice).collect();
    let mut arena = InferArena::new();
    let baseline = arena.translate_batch(&spec, &srcs, 5);

    for mode in [QuantMode::F16, QuantMode::Int8] {
        let (qspec, report) = spec.quantize(mode).expect("quantize");
        assert_eq!(report.mode, mode);
        assert!(report.matrices > 0, "{mode}: nothing re-encoded");
        // Xavier-initialized-then-trained weights stay well inside the
        // serving layer's default 0.05 elementwise budget.
        assert!(
            report.max_weight_error < 0.05,
            "{mode}: weight error {}",
            report.max_weight_error
        );
        let hyps = arena.translate_batch(&qspec, &srcs, 5);
        let mut stats = BleuStats::new(2);
        for (hyp, reference) in hyps.iter().zip(&baseline) {
            stats.update(hyp, reference);
        }
        let bleu = stats.score(Smoothing::AddOne);
        assert!(
            bleu >= 0.9,
            "{mode}: quantized decode drifted to BLEU {bleu} against f32"
        );
    }
}
