//! End-to-end integration test of case study II: SMART telemetry ->
//! discretization -> pooled language pipeline -> translation graph ->
//! per-drive detection; plus the tabular baselines.

use mdes::core::{build_graph, detect, DetectionConfig, GraphBuildConfig};
use mdes::graph::ScoreRange;
use mdes::lang::{LanguagePipeline, RawTrace, SentenceSet, WindowConfig};
use mdes::ml::{Confusion, Dataset, ForestConfig, RandomForest};
use mdes::synth::hdd::{generate, HddConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fleet() -> mdes::synth::hdd::HddData {
    generate(&HddConfig {
        n_drives: 12,
        days: 200,
        failure_fraction: 0.4,
        ..HddConfig::default()
    })
}

#[test]
fn pooled_discretization_gives_uniform_feature_sets() {
    let fleet = fleet();
    let eligible = fleet.drives_with_min_days(110);
    assert!(eligible.len() >= 2);
    let schemes = fleet.pooled_schemes(&eligible, 60);
    assert_eq!(schemes.len(), fleet.feature_names.len());
    // Constant features (spin retry, calibration retry) must be dropped.
    assert!(schemes[6].is_none(), "spin retry should be constant");
    assert!(schemes[7].is_none(), "calibration retry should be constant");
    let kept = schemes.iter().flatten().count();
    assert!(kept >= 10);
    // Every drive gets the same trace names in the same order.
    let names: Vec<Vec<String>> = eligible
        .iter()
        .map(|&d| {
            fleet
                .drive_traces_with_schemes(d, &schemes)
                .iter()
                .map(|t| t.name.clone())
                .collect()
        })
        .collect();
    assert!(names.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn pooled_graph_training_and_detection_work() {
    let fleet = fleet();
    let eligible = fleet.drives_with_min_days(110);
    let schemes = fleet.pooled_schemes(&eligible, 60);
    let window = WindowConfig::hdd();
    let per_drive: Vec<(usize, Vec<RawTrace>)> = eligible
        .iter()
        .map(|&d| (d, fleet.drive_traces_with_schemes(d, &schemes)))
        .collect();
    let windows = |d: usize| {
        let days = fleet.drives[d].days();
        (days - 110..days - 50, days - 50..days - 25, days - 25..days)
    };
    let nf = per_drive[0].1.len();
    let cat: Vec<RawTrace> = (0..nf)
        .map(|f| {
            let mut events = Vec::new();
            for (d, traces) in &per_drive {
                events.extend_from_slice(&traces[f].events[windows(*d).0]);
            }
            RawTrace::new(per_drive[0].1[f].name.clone(), events)
        })
        .collect();
    let pipeline = LanguagePipeline::fit(&cat, 0..cat[0].events.len(), window).expect("fit");
    let n = pipeline.sensor_count();
    let empty = SentenceSet {
        sentences: Vec::new(),
        starts: Vec::new(),
    };
    let (mut train_sets, mut dev_sets) = (vec![empty.clone(); n], vec![empty; n]);
    for (d, traces) in &per_drive {
        let (tr, dv, _) = windows(*d);
        let t = pipeline.encode_segment(traces, tr).expect("train enc");
        let v = pipeline.encode_segment(traces, dv).expect("dev enc");
        for k in 0..n {
            train_sets[k].sentences.extend_from_slice(&t[k].sentences);
            train_sets[k].starts.extend_from_slice(&t[k].starts);
            dev_sets[k].sentences.extend_from_slice(&v[k].sentences);
            dev_sets[k].starts.extend_from_slice(&v[k].starts);
        }
    }
    let trained = build_graph(
        &pipeline,
        &train_sets,
        &dev_sets,
        &GraphBuildConfig::default(),
    )
    .expect("build");
    assert_eq!(trained.models().len(), n * (n - 1));

    // Detection runs for every drive and yields bounded scores.
    let dcfg = DetectionConfig {
        valid_range: ScoreRange::closed(40.0, 100.0),
        ..DetectionConfig::default()
    };
    for (d, traces) in &per_drive {
        let (_, _, test_r) = windows(*d);
        let sets = pipeline.encode_segment(traces, test_r).expect("test enc");
        let res = detect(&trained, &sets, &dcfg).expect("detect");
        assert!(!res.scores.is_empty());
        assert!(res.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }
}

#[test]
fn tabular_baseline_flow_is_consistent() {
    let fleet = fleet();
    let (x, y, names) = fleet.to_tabular_windowed(3);
    assert_eq!(x.len(), y.len());
    assert!(x.iter().all(|r| r.len() == names.len()));
    // Windowed labels: 3 positives per failed drive with >= 3 days.
    let failed = fleet.drives.iter().filter(|d| d.failed).count();
    let positives = y.iter().filter(|&&l| l == 1).count();
    assert_eq!(positives, 3 * failed);

    let data = Dataset::new(x, y).with_feature_names(names);
    let mut rng = StdRng::seed_from_u64(5);
    let (train, test) = data.train_test_split(0.8, &mut rng);
    let balanced = train.undersample_balanced(&mut rng);
    let forest = RandomForest::fit(
        &balanced,
        &ForestConfig {
            n_trees: 20,
            ..Default::default()
        },
    );
    let conf = Confusion::from_predictions(&forest.predict(&test.x), &test.y);
    // The degradation signature is learnable: recall must beat coin flipping.
    assert!(conf.recall() > 0.5, "rf recall {}", conf.recall());
}
