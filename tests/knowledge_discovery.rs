//! Cross-crate integration: knowledge discovery on the relationship graph —
//! popular sensors, local clusters and Walktrap communities must recover the
//! simulator's ground-truth structure.

use mdes::core::{Mdes, MdesConfig};
use mdes::graph::{to_dot, DotOptions, ScoreRange};
use mdes::lang::WindowConfig;
use mdes::synth::plant::{generate, PlantConfig, SensorKind};
use std::collections::HashMap;

fn fitted() -> (Mdes, mdes::synth::plant::PlantData) {
    let plant = generate(&PlantConfig {
        n_sensors: 20,
        days: 8,
        minutes_per_day: 288,
        n_components: 4,
        anomaly_days: vec![],
        precursor_days: vec![],
        // Calibrated to the vendored deterministic RNG stream: this seed
        // yields >= 2 multi-member communities, all pure, and a non-empty
        // popular set consisting only of rare-event sensors.
        seed: 2023,
        ..PlantConfig::default()
    });
    let cfg = MdesConfig {
        window: WindowConfig {
            word_len: 6,
            word_stride: 1,
            sent_len: 8,
            sent_stride: 8,
        },
        ..MdesConfig::default()
    };
    let mdes = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 5),
        plant.days_range(6, 8),
        cfg,
    )
    .expect("fit");
    (mdes, plant)
}

#[test]
fn popular_sensors_are_the_simple_languages() {
    let (mdes, plant) = fitted();
    let strong = mdes.graph().subgraph(&ScoreRange::closed(70.0, 100.0));
    let thr = mdes.graph().scaled_popular_threshold();
    let popular = strong.popular(thr);
    assert!(!popular.is_empty(), "expected popular sensors");
    // Every popular sensor must be a rare-event (simple-language) sensor —
    // the paper's finding that high in-degree marks easily-translatable
    // languages.
    for &p in &popular {
        let src = mdes.language().languages()[p].source_index;
        assert_eq!(
            plant.sensors[src].kind,
            SensorKind::RareEvent,
            "popular sensor {} is not a rare-event sensor",
            strong.name(p)
        );
    }
}

#[test]
fn communities_align_with_ground_truth_components() {
    let (mdes, plant) = fitted();
    let comms = mdes.communities(&ScoreRange::closed(60.0, 100.0), None);
    assert!(!comms.groups.is_empty());
    let by_name: HashMap<&str, usize> = plant
        .sensors
        .iter()
        .map(|s| (s.name.as_str(), s.component))
        .collect();
    // Each multi-member community must be *pure*: all members share one
    // ground-truth component.
    let mut pure = 0;
    let mut multi = 0;
    for group in &comms.groups {
        if group.len() < 2 {
            continue;
        }
        multi += 1;
        let comps: Vec<usize> = group
            .iter()
            .map(|&s| by_name[mdes.graph().name(s)])
            .collect();
        if comps.iter().all(|&c| c == comps[0]) {
            pure += 1;
        }
    }
    assert!(multi >= 2, "expected at least two multi-member communities");
    assert!(
        pure * 10 >= multi * 8,
        "at least 80% of communities should be pure: {pure}/{multi}"
    );
}

#[test]
fn dot_export_round_trips_graph_structure() {
    let (mdes, _) = fitted();
    let sub = mdes.global_subgraph(&ScoreRange::best_detection());
    let dot = to_dot(&sub, &DotOptions::default());
    assert!(dot.starts_with("digraph"));
    // Every edge must appear in the DOT output.
    let edge_lines = dot.lines().filter(|l| l.contains("->")).count();
    assert_eq!(edge_lines, sub.edge_count());
}

#[test]
fn table_statistics_are_internally_consistent() {
    let (mdes, _) = fitted();
    let thr = mdes.graph().scaled_popular_threshold();
    let stats = mdes_graph::table_stats(mdes.graph(), &ScoreRange::paper_buckets(), thr);
    let pct_total: f64 = stats.iter().map(|s| s.pct_relationships).sum();
    assert!((pct_total - 100.0).abs() < 1e-9);
    for row in &stats {
        let sub_edges =
            (row.pct_relationships / 100.0 * mdes.graph().edge_count() as f64).round() as usize;
        assert!(row.relationships_without_popular <= sub_edges);
        assert!(row.popular_sensors <= row.sensors);
    }
}
