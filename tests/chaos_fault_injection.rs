//! Chaos tests: the fitted pipeline must *degrade*, never crash, when its
//! input channels fail.
//!
//! A clean model is fitted once; held-out samples are then replayed through
//! the streaming monitor under every [`FaultKind`] the injector supports.
//! Garbling modes (stuck-at, corruption, burst noise) must raise the anomaly
//! score on the injected windows relative to the clean replay of the same
//! windows; dropout must shrink coverage and name the dropped sensor while
//! detections keep flowing; and no failure mode may panic or return a hard
//! error. The batch path and the `Degrade` training policy get the same
//! treatment.
//!
//! Two fixtures are used. Score-rise assertions run on tightly-coupled
//! square waves, whose calibrated floors sit near 100 BLEU so any garbling
//! of one sensor visibly breaks its pairs. Degradation and policy
//! assertions run on the synthetic plant, whose weakly-coupled sensors are
//! the harsher robustness environment (many pairs calibrate to a zero
//! floor and contribute no evidence either way).

use mdes::core::{BrokenRule, FailurePolicy, Mdes, MdesConfig, OnlineDetection};
use mdes::graph::ScoreRange;
use mdes::lang::{RawTrace, WindowConfig, MISSING_RECORD};
use mdes::synth::faults::FaultInjector;
use mdes::synth::plant::{generate, PlantConfig, PlantData};
use std::ops::Range;

/// Test segment: days 6..=7 of the simulated plant.
const TEST_FROM: usize = 6;
const TEST_TO: usize = 7;
/// Fault window, in samples relative to the start of the test segment.
const FAULT_START: usize = 200;
const FAULT_END: usize = 400;

fn plant_config() -> MdesConfig {
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    // Score against each pair's calibrated dev-quantile floor (instead of
    // the corpus mean, under which half of all normal windows count as
    // broken) so the clean replay stays quiet and a rise is attributable to
    // the injected fault.
    cfg.detection.rule = BrokenRule::DevQuantileFloor;
    cfg
}

/// Fits a clean 6-sensor plant on days 1..=3 (dev 4..=5).
fn fit_clean_plant(cfg: MdesConfig) -> (Mdes, PlantData) {
    let plant = generate(&PlantConfig {
        n_sensors: 6,
        days: 7,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 3),
        plant.days_range(4, 5),
        cfg,
    )
    .expect("clean fit");
    (m, plant)
}

/// Fits four tightly-coupled square-wave sensors: every pair translates
/// near-perfectly, so the calibrated floors are high and any garbling of one
/// sensor visibly breaks its pairs.
fn fit_clean_squares() -> (Mdes, Vec<RawTrace>) {
    let square = |name: &str, phase: usize| {
        RawTrace::new(
            name,
            (0..900)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    };
    let traces = vec![
        square("a", 0),
        square("b", 2),
        square("c", 4),
        square("d", 6),
    ];
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    cfg.detection.rule = BrokenRule::DevQuantileFloor;
    let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("square fit");
    (m, traces)
}

/// Streams `range` of `traces` through a fresh monitor, translating the
/// injector's [`MISSING_RECORD`] sentinel into a `None` record (exactly what
/// a collector that noticed the gap would push). Every push must succeed;
/// the emitted detections come back indexed relative to the start of the
/// stream.
fn stream(m: &Mdes, traces: &[RawTrace], range: Range<usize>) -> Vec<OnlineDetection> {
    let width = traces.len();
    let mut monitor = m
        .clone()
        .try_into_online_monitor(width)
        .expect("width covers the model");
    let mut out = Vec::new();
    for t in range {
        let sample: Vec<Option<String>> = traces
            .iter()
            .map(|tr| {
                let rec = tr.events[t].clone();
                (rec != MISSING_RECORD).then_some(rec)
            })
            .collect();
        if let Some(d) = monitor.push_opt(&sample).expect("chaos must not hard-fail") {
            assert!(d.score.is_finite(), "score must stay finite");
            assert!(
                (0.0..=1.0).contains(&d.score),
                "score in [0,1]: {}",
                d.score
            );
            assert!((0.0..=1.0).contains(&d.coverage));
            out.push(d);
        }
    }
    assert!(!out.is_empty(), "detections must keep flowing");
    out
}

/// Mean score of detections completing inside the fault window (with slack
/// for the sentence buffer to fill with faulted samples).
fn fault_window_mean(detections: &[OnlineDetection]) -> f64 {
    let inside: Vec<f64> = detections
        .iter()
        .filter(|d| (FAULT_START + 40..FAULT_END).contains(&d.sample_index))
        .map(|d| d.score)
        .collect();
    assert!(!inside.is_empty(), "fault window must contain detections");
    inside.iter().sum::<f64>() / inside.len() as f64
}

#[test]
fn garbling_faults_raise_scores_on_injected_windows() {
    let (m, traces) = fit_clean_squares();
    let target = 1;
    let range = 450..900;
    let abs = |rel: usize| range.start + rel;
    let clean_mean = fault_window_mean(&stream(&m, &traces, range.clone()));

    let modes: Vec<(&str, FaultInjector)> = vec![
        (
            "stuck-at",
            FaultInjector::new(11).stuck_at(target, abs(FAULT_START), abs(FAULT_END)),
        ),
        (
            "corrupt",
            FaultInjector::new(12).corrupt(target, abs(FAULT_START), abs(FAULT_END), 0.8),
        ),
        (
            "burst-noise",
            FaultInjector::new(13).burst_noise(target, abs(FAULT_START), abs(FAULT_END)),
        ),
    ];
    for (name, injector) in modes {
        let faulty = injector.apply(&traces);
        let detections = stream(&m, &faulty, range.clone());
        let faulty_mean = fault_window_mean(&detections);
        assert!(
            faulty_mean > clean_mean + 0.1,
            "{name}: injected windows must score well above clean \
             ({faulty_mean:.3} vs {clean_mean:.3})"
        );
        // Garbled records are evidence, not missing evidence: no sensor is
        // dropped and every valid pair still votes.
        for d in &detections {
            assert!(d.dropped_sensors.is_empty(), "{name} must not drop sensors");
            assert_eq!(d.coverage, 1.0);
        }
    }
}

#[test]
fn dropout_shrinks_coverage_and_names_the_dead_sensor() {
    let (m, plant) = fit_clean_plant(plant_config());
    let target = plant
        .representative_periodic()
        .expect("plant has a periodic sensor");
    let test = plant.days_range(TEST_FROM, TEST_TO);
    let faulty = FaultInjector::new(21)
        .dropout(target, test.start + FAULT_START, test.start + FAULT_END)
        .apply(&plant.traces);
    let detections = stream(&m, &faulty, test);

    let during: Vec<&OnlineDetection> = detections
        .iter()
        .filter(|d| (FAULT_START + 10..FAULT_END).contains(&d.sample_index))
        .collect();
    assert!(!during.is_empty(), "detections keep flowing during dropout");
    for d in &during {
        assert!(
            d.coverage < 1.0,
            "dropout must reduce coverage, got {}",
            d.coverage
        );
        assert_eq!(d.dropped_sensors, vec![target]);
    }

    let after: Vec<&OnlineDetection> = detections
        .iter()
        .filter(|d| d.sample_index >= FAULT_END + 10)
        .collect();
    assert!(!after.is_empty(), "stream continues after recovery");
    for d in &after {
        assert_eq!(d.coverage, 1.0, "recovery must restore full coverage");
        assert!(d.dropped_sensors.is_empty());
    }
}

#[test]
fn batch_detection_survives_injected_test_data() {
    let (m, plant) = fit_clean_plant(plant_config());
    let target = plant
        .representative_periodic()
        .expect("plant has a periodic sensor");
    let test = plant.days_range(TEST_FROM, TEST_TO);

    let clean = m.detect_range(&plant.traces, test.clone()).expect("clean");
    let faulty_traces = FaultInjector::new(31)
        .burst_noise(target, test.start + FAULT_START, test.start + FAULT_END)
        .apply(&plant.traces);
    let faulty = m
        .detect_range(&faulty_traces, test)
        .expect("batch detection absorbs garbled records");

    assert_eq!(faulty.scores.len(), clean.scores.len());
    assert!(faulty.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    let mean = |scores: &[f64]| scores.iter().sum::<f64>() / scores.len() as f64;
    assert!(
        mean(&faulty.scores) > mean(&clean.scores),
        "burst noise must raise the mean batch score"
    );
}

#[test]
fn degrade_policy_fit_tolerates_a_poisoned_pair_end_to_end() {
    let mut cfg = plant_config();
    cfg.build.policy = FailurePolicy::Degrade {
        min_success_fraction: 0.5,
    };
    // Poison one worker via the chaos hook: the sweep must quarantine that
    // edge and still assemble the rest of the graph.
    cfg.build.chaos_fail_pairs = vec![(0, 1)];
    let (m, plant) = fit_clean_plant(cfg);

    assert_eq!(m.trained().quarantined().len(), 1);
    let q = &m.trained().quarantined()[0];
    assert_eq!((q.src, q.dst), (0, 1));
    assert!(
        m.graph().score(0, 1).is_none(),
        "quarantined edge is absent"
    );
    assert!(
        m.graph().score(1, 0).is_some(),
        "the reverse direction trained normally"
    );

    // The degraded model still runs detection and streaming end to end.
    let test = plant.days_range(TEST_FROM, TEST_TO);
    let batch = m
        .detect_range(&plant.traces, test.clone())
        .expect("degraded graph still detects");
    assert!(batch.valid_models > 0);
    stream(&m, &plant.traces, test);
}

// ---------------------------------------------------------------------------
// Network chaos: the `mdes-serve` daemon under connection-level faults.
//
// The daemon must degrade per-connection, never per-process: a client that
// disconnects mid-batch, feeds bytes too slowly, or stops reading replies
// may lose *its own* work, while every other session keeps producing
// bit-identical scores and the `serve.net.*` counters keep reconciling
// (every queued sample is eventually scored or explicitly counted as
// dropped — none vanish).
// ---------------------------------------------------------------------------

mod serve_net_chaos {
    use mdes::core::serve::{GraphSnapshot, ServingEngine};
    use mdes::core::{Mdes, MdesConfig, OnlineDetection};
    use mdes::graph::ScoreRange;
    use mdes::lang::{RawTrace, WindowConfig};
    use mdes::net::{
        encode_frame, start, FrameKind, IngestClient, PushEntry, PushOutcome, ServeConfig,
        ServerHandle,
    };
    use mdes::obs::Recorder;
    use std::io::Write;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
    use std::time::{Duration, Instant};

    /// Counter reconciliation needs exclusive use of the process-global
    /// recorder, so the network chaos tests run one at a time.
    fn net_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn recorder() -> Arc<Recorder> {
        static RECORDER: OnceLock<Arc<Recorder>> = OnceLock::new();
        let r = RECORDER.get_or_init(|| Arc::new(Recorder::new()));
        mdes::obs::install(Arc::clone(r));
        Arc::clone(r)
    }

    fn square(name: &str, n: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn fitted() -> (Mdes, Vec<RawTrace>) {
        let traces = vec![
            square("a", 710, 0),
            square("b", 710, 2),
            square("c", 710, 4),
        ];
        let mut cfg = MdesConfig {
            window: WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            },
            ..MdesConfig::default()
        };
        cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
        let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
        (m, traces)
    }

    fn sample(traces: &[RawTrace], t: usize) -> Vec<Option<String>> {
        traces.iter().map(|tr| Some(tr.events[t].clone())).collect()
    }

    fn serve(cfg: ServeConfig) -> (ServerHandle, Vec<RawTrace>, Vec<OnlineDetection>) {
        let (m, traces) = fitted();
        let snapshot = GraphSnapshot::freeze(&m);
        // In-process reference over the healthy stream 450..700.
        let reference_engine = ServingEngine::new(snapshot.clone());
        let mut session = reference_engine.open_session(3).expect("session");
        let mut reference = Vec::new();
        for t in 450..700 {
            if let Some(d) = reference_engine
                .push_opt(&mut session, &sample(&traces, t))
                .expect("push")
            {
                reference.push(d);
            }
        }
        assert!(!reference.is_empty(), "fixture must emit detections");
        let server = start(ServingEngine::new(snapshot), cfg).expect("start");
        (server, traces, reference)
    }

    /// Streams the healthy 450..700 range through one network session and
    /// asserts the detections are bit-identical to the in-process run.
    /// `chunk` bounds the outstanding pushes; it must stay within BOTH the
    /// server's per-session queue capacity (or entries bounce `Busy`) and
    /// its per-connection outbound capacity (or replies are dropped).
    fn stream_and_verify_chunked(
        client: &mut IngestClient,
        session: u64,
        traces: &[RawTrace],
        reference: &[OnlineDetection],
        chunk: usize,
    ) {
        let mut served = Vec::new();
        for chunk in (450..700).collect::<Vec<_>>().chunks(chunk) {
            let entries: Vec<PushEntry> = chunk
                .iter()
                .map(|&t| PushEntry {
                    session,
                    seq: t as u64,
                    records: sample(traces, t),
                })
                .collect();
            let n = entries.len();
            client.send_push_batch(entries).expect("send");
            for reply in client.recv_push_replies(n).expect("recv") {
                match reply.outcome {
                    PushOutcome::Ack => {}
                    PushOutcome::Score(w) => served.push(OnlineDetection::from(w)),
                    other => panic!("healthy session got {other:?}"),
                }
            }
        }
        assert_eq!(served.len(), reference.len());
        for (s, r) in served.iter().zip(reference) {
            assert_eq!(s.score.to_bits(), r.score.to_bits());
            assert_eq!(s.alerts, r.alerts);
        }
    }

    /// Sample-conservation invariant: once quiesced, every sample the
    /// server ever queued was scored or explicitly counted as dropped.
    fn assert_counters_reconcile(recorder: &Recorder) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let pushes = recorder.counter_value("serve.net.pushes");
            let settled = recorder.counter_value("serve.net.acks")
                + recorder.counter_value("serve.net.scores")
                + recorder.counter_value("serve.net.push_errors")
                + recorder.counter_value("serve.net.dropped_samples");
            if pushes == settled {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "counters never reconciled: pushes={pushes} settled={settled}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn mid_batch_disconnect_leaves_other_sessions_scoring() {
        let _guard = net_lock();
        let recorder = recorder();
        let (server, traces, reference) = serve(ServeConfig::default());

        // The victim: queue a burst of work, then vanish without reading a
        // single reply — half-way through, its last frame is cut mid-bytes.
        let mut victim = IngestClient::connect(server.addr()).expect("connect");
        let (victim_session, _) = victim.open_session(3).expect("open");
        let entries: Vec<PushEntry> = (450..490)
            .map(|t| PushEntry {
                session: victim_session,
                seq: t as u64,
                records: sample(&traces, t),
            })
            .collect();
        victim.send_push_batch(entries).expect("send");
        // A torn frame: header + half the payload, then a hard disconnect.
        let torn = encode_frame(FrameKind::PushBatch, b"{\"entries\": [");
        victim.send_raw(&torn[..torn.len() / 2]).expect("raw");
        drop(victim);

        // The survivor scores the whole healthy stream bit-exactly while
        // the server digests the victim's mess.
        let mut survivor = IngestClient::connect(server.addr()).expect("connect");
        let (survivor_session, _) = survivor.open_session(3).expect("open");
        stream_and_verify_chunked(&mut survivor, survivor_session, &traces, &reference, 32);

        // Quiesce: evict the victim's session (its queued samples become
        // counted drops), then the books must balance.
        server.engine(); // server alive until here
        let mut admin =
            mdes::net::AdminClient::connect(server.admin_addr().expect("admin")).expect("admin");
        let (_, status) = admin
            .cmd(&format!("evict {victim_session}"))
            .expect("evict");
        assert!(
            status.starts_with("ok evicted") || status.starts_with("err unknown"),
            "got {status:?}"
        );
        assert_counters_reconcile(&recorder);
        server.stop();
    }

    #[test]
    fn slow_loris_writer_is_cut_by_the_frame_timeout() {
        let _guard = net_lock();
        let recorder = recorder();
        let cfg = ServeConfig {
            read_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let (server, traces, reference) = serve(cfg);
        let timeouts_before = recorder.counter_value("serve.net.timeouts");

        // The loris: drip half a valid frame, then go quiet forever.
        let frame = encode_frame(FrameKind::Ping, &[]);
        let mut loris = std::net::TcpStream::connect(server.addr()).expect("connect");
        loris.write_all(&frame[..7]).expect("drip");

        // While the loris dangles, a healthy connection keeps scoring.
        let mut healthy = IngestClient::connect(server.addr()).expect("connect");
        let (session, _) = healthy.open_session(3).expect("open");
        stream_and_verify_chunked(&mut healthy, session, &traces, &reference, 32);

        // The server must answer the loris with a typed timed_out error
        // frame and close; the drained bytes end with EOF.
        let bytes = mdes::net::drain_to_eof(&mut loris, Duration::from_secs(10)).expect("drain");
        let text = String::from_utf8_lossy(&bytes);
        assert!(
            text.contains("timed_out"),
            "loris must get a typed timeout error, got {text:?}"
        );
        assert!(
            recorder.counter_value("serve.net.timeouts") > timeouts_before,
            "timeout counter must advance"
        );
        assert_counters_reconcile(&recorder);
        server.stop();
    }

    #[test]
    fn stalled_consumer_backpressures_only_its_own_sessions() {
        let _guard = net_lock();
        let recorder = recorder();
        let cfg = ServeConfig {
            queue_capacity: 8,
            outbound_capacity: 4,
            ..ServeConfig::default()
        };
        let (server, traces, reference) = serve(cfg);

        // The staller opens a session and floods pushes without ever
        // reading a reply. Every entry produces a reply frame (an Ack, a
        // Score, or a Busy bounce off the 8-deep ingest queue), so the
        // flood eventually overflows the kernel's loopback socket
        // buffering (a few MiB), wedges the writer thread, fills the
        // 4-frame outbound queue, and forces the pump to skip the session.
        let mut staller = IngestClient::connect(server.addr()).expect("connect");
        let (stall_session, _) = staller.open_session(3).expect("open");
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut seq = 0u64;
        while recorder.counter_value("serve.net.stalled_skips") == 0 {
            assert!(
                Instant::now() < deadline,
                "pump never skipped the stalled consumer"
            );
            let entries: Vec<PushEntry> = (0..1000)
                .map(|i| PushEntry {
                    session: stall_session,
                    seq: seq + i,
                    records: sample(&traces, 450 + ((seq + i) as usize % 250)),
                })
                .collect();
            seq += 1000;
            staller.send_push_batch(entries).expect("send");
        }

        // The stalled consumer wedged; a parallel session must still score
        // the full stream bit-exactly.
        let mut healthy = IngestClient::connect(server.addr()).expect("connect");
        let (session, _) = healthy.open_session(3).expect("open");
        stream_and_verify_chunked(&mut healthy, session, &traces, &reference, 2);

        // Backpressure was explicit, not silent: at least one Busy bounce
        // or dropped reply is on the books.
        let busy = recorder.counter_value("serve.net.busy");
        let dropped_replies = recorder.counter_value("serve.net.replies_dropped");
        assert!(
            busy > 0 || dropped_replies > 0,
            "a flooding producer must see explicit backpressure"
        );

        // When the staller finally reads, whatever replies fit the bounded
        // queue are intact, in order, and parseable.
        let drained = staller.recv_push_replies(1).expect("at least one reply");
        assert_eq!(drained[0].session, stall_session);

        drop(staller);
        let mut admin =
            mdes::net::AdminClient::connect(server.admin_addr().expect("admin")).expect("admin");
        let (_, _status) = admin.cmd(&format!("evict {stall_session}")).expect("evict");
        assert_counters_reconcile(&recorder);

        // The obs admin endpoint serves the same recorder this test reads.
        let (data, status) = admin.cmd("obs").expect("obs");
        assert_eq!(status, "ok");
        assert!(
            data.iter().any(|l| l.contains("serve.net.pushes")),
            "obs dump must include the serving counters"
        );
        server.stop();
    }
}
