//! Chaos tests: the fitted pipeline must *degrade*, never crash, when its
//! input channels fail.
//!
//! A clean model is fitted once; held-out samples are then replayed through
//! the streaming monitor under every [`FaultKind`] the injector supports.
//! Garbling modes (stuck-at, corruption, burst noise) must raise the anomaly
//! score on the injected windows relative to the clean replay of the same
//! windows; dropout must shrink coverage and name the dropped sensor while
//! detections keep flowing; and no failure mode may panic or return a hard
//! error. The batch path and the `Degrade` training policy get the same
//! treatment.
//!
//! Two fixtures are used. Score-rise assertions run on tightly-coupled
//! square waves, whose calibrated floors sit near 100 BLEU so any garbling
//! of one sensor visibly breaks its pairs. Degradation and policy
//! assertions run on the synthetic plant, whose weakly-coupled sensors are
//! the harsher robustness environment (many pairs calibrate to a zero
//! floor and contribute no evidence either way).

use mdes::core::{BrokenRule, FailurePolicy, Mdes, MdesConfig, OnlineDetection};
use mdes::graph::ScoreRange;
use mdes::lang::{RawTrace, WindowConfig, MISSING_RECORD};
use mdes::synth::faults::FaultInjector;
use mdes::synth::plant::{generate, PlantConfig, PlantData};
use std::ops::Range;

/// Test segment: days 6..=7 of the simulated plant.
const TEST_FROM: usize = 6;
const TEST_TO: usize = 7;
/// Fault window, in samples relative to the start of the test segment.
const FAULT_START: usize = 200;
const FAULT_END: usize = 400;

fn plant_config() -> MdesConfig {
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    // Score against each pair's calibrated dev-quantile floor (instead of
    // the corpus mean, under which half of all normal windows count as
    // broken) so the clean replay stays quiet and a rise is attributable to
    // the injected fault.
    cfg.detection.rule = BrokenRule::DevQuantileFloor;
    cfg
}

/// Fits a clean 6-sensor plant on days 1..=3 (dev 4..=5).
fn fit_clean_plant(cfg: MdesConfig) -> (Mdes, PlantData) {
    let plant = generate(&PlantConfig {
        n_sensors: 6,
        days: 7,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 3),
        plant.days_range(4, 5),
        cfg,
    )
    .expect("clean fit");
    (m, plant)
}

/// Fits four tightly-coupled square-wave sensors: every pair translates
/// near-perfectly, so the calibrated floors are high and any garbling of one
/// sensor visibly breaks its pairs.
fn fit_clean_squares() -> (Mdes, Vec<RawTrace>) {
    let square = |name: &str, phase: usize| {
        RawTrace::new(
            name,
            (0..900)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    };
    let traces = vec![
        square("a", 0),
        square("b", 2),
        square("c", 4),
        square("d", 6),
    ];
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    cfg.detection.rule = BrokenRule::DevQuantileFloor;
    let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("square fit");
    (m, traces)
}

/// Streams `range` of `traces` through a fresh monitor, translating the
/// injector's [`MISSING_RECORD`] sentinel into a `None` record (exactly what
/// a collector that noticed the gap would push). Every push must succeed;
/// the emitted detections come back indexed relative to the start of the
/// stream.
fn stream(m: &Mdes, traces: &[RawTrace], range: Range<usize>) -> Vec<OnlineDetection> {
    let width = traces.len();
    let mut monitor = m
        .clone()
        .try_into_online_monitor(width)
        .expect("width covers the model");
    let mut out = Vec::new();
    for t in range {
        let sample: Vec<Option<String>> = traces
            .iter()
            .map(|tr| {
                let rec = tr.events[t].clone();
                (rec != MISSING_RECORD).then_some(rec)
            })
            .collect();
        if let Some(d) = monitor.push_opt(&sample).expect("chaos must not hard-fail") {
            assert!(d.score.is_finite(), "score must stay finite");
            assert!(
                (0.0..=1.0).contains(&d.score),
                "score in [0,1]: {}",
                d.score
            );
            assert!((0.0..=1.0).contains(&d.coverage));
            out.push(d);
        }
    }
    assert!(!out.is_empty(), "detections must keep flowing");
    out
}

/// Mean score of detections completing inside the fault window (with slack
/// for the sentence buffer to fill with faulted samples).
fn fault_window_mean(detections: &[OnlineDetection]) -> f64 {
    let inside: Vec<f64> = detections
        .iter()
        .filter(|d| (FAULT_START + 40..FAULT_END).contains(&d.sample_index))
        .map(|d| d.score)
        .collect();
    assert!(!inside.is_empty(), "fault window must contain detections");
    inside.iter().sum::<f64>() / inside.len() as f64
}

#[test]
fn garbling_faults_raise_scores_on_injected_windows() {
    let (m, traces) = fit_clean_squares();
    let target = 1;
    let range = 450..900;
    let abs = |rel: usize| range.start + rel;
    let clean_mean = fault_window_mean(&stream(&m, &traces, range.clone()));

    let modes: Vec<(&str, FaultInjector)> = vec![
        (
            "stuck-at",
            FaultInjector::new(11).stuck_at(target, abs(FAULT_START), abs(FAULT_END)),
        ),
        (
            "corrupt",
            FaultInjector::new(12).corrupt(target, abs(FAULT_START), abs(FAULT_END), 0.8),
        ),
        (
            "burst-noise",
            FaultInjector::new(13).burst_noise(target, abs(FAULT_START), abs(FAULT_END)),
        ),
    ];
    for (name, injector) in modes {
        let faulty = injector.apply(&traces);
        let detections = stream(&m, &faulty, range.clone());
        let faulty_mean = fault_window_mean(&detections);
        assert!(
            faulty_mean > clean_mean + 0.1,
            "{name}: injected windows must score well above clean \
             ({faulty_mean:.3} vs {clean_mean:.3})"
        );
        // Garbled records are evidence, not missing evidence: no sensor is
        // dropped and every valid pair still votes.
        for d in &detections {
            assert!(d.dropped_sensors.is_empty(), "{name} must not drop sensors");
            assert_eq!(d.coverage, 1.0);
        }
    }
}

#[test]
fn dropout_shrinks_coverage_and_names_the_dead_sensor() {
    let (m, plant) = fit_clean_plant(plant_config());
    let target = plant
        .representative_periodic()
        .expect("plant has a periodic sensor");
    let test = plant.days_range(TEST_FROM, TEST_TO);
    let faulty = FaultInjector::new(21)
        .dropout(target, test.start + FAULT_START, test.start + FAULT_END)
        .apply(&plant.traces);
    let detections = stream(&m, &faulty, test);

    let during: Vec<&OnlineDetection> = detections
        .iter()
        .filter(|d| (FAULT_START + 10..FAULT_END).contains(&d.sample_index))
        .collect();
    assert!(!during.is_empty(), "detections keep flowing during dropout");
    for d in &during {
        assert!(
            d.coverage < 1.0,
            "dropout must reduce coverage, got {}",
            d.coverage
        );
        assert_eq!(d.dropped_sensors, vec![target]);
    }

    let after: Vec<&OnlineDetection> = detections
        .iter()
        .filter(|d| d.sample_index >= FAULT_END + 10)
        .collect();
    assert!(!after.is_empty(), "stream continues after recovery");
    for d in &after {
        assert_eq!(d.coverage, 1.0, "recovery must restore full coverage");
        assert!(d.dropped_sensors.is_empty());
    }
}

#[test]
fn batch_detection_survives_injected_test_data() {
    let (m, plant) = fit_clean_plant(plant_config());
    let target = plant
        .representative_periodic()
        .expect("plant has a periodic sensor");
    let test = plant.days_range(TEST_FROM, TEST_TO);

    let clean = m.detect_range(&plant.traces, test.clone()).expect("clean");
    let faulty_traces = FaultInjector::new(31)
        .burst_noise(target, test.start + FAULT_START, test.start + FAULT_END)
        .apply(&plant.traces);
    let faulty = m
        .detect_range(&faulty_traces, test)
        .expect("batch detection absorbs garbled records");

    assert_eq!(faulty.scores.len(), clean.scores.len());
    assert!(faulty.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    let mean = |scores: &[f64]| scores.iter().sum::<f64>() / scores.len() as f64;
    assert!(
        mean(&faulty.scores) > mean(&clean.scores),
        "burst noise must raise the mean batch score"
    );
}

#[test]
fn degrade_policy_fit_tolerates_a_poisoned_pair_end_to_end() {
    let mut cfg = plant_config();
    cfg.build.policy = FailurePolicy::Degrade {
        min_success_fraction: 0.5,
    };
    // Poison one worker via the chaos hook: the sweep must quarantine that
    // edge and still assemble the rest of the graph.
    cfg.build.chaos_fail_pairs = vec![(0, 1)];
    let (m, plant) = fit_clean_plant(cfg);

    assert_eq!(m.trained().quarantined().len(), 1);
    let q = &m.trained().quarantined()[0];
    assert_eq!((q.src, q.dst), (0, 1));
    assert!(
        m.graph().score(0, 1).is_none(),
        "quarantined edge is absent"
    );
    assert!(
        m.graph().score(1, 0).is_some(),
        "the reverse direction trained normally"
    );

    // The degraded model still runs detection and streaming end to end.
    let test = plant.days_range(TEST_FROM, TEST_TO);
    let batch = m
        .detect_range(&plant.traces, test.clone())
        .expect("degraded graph still detects");
    assert!(batch.valid_models > 0);
    stream(&m, &plant.traces, test);
}
