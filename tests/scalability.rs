//! Scalable-sweep guarantees: prescreen recall, kill-and-resume shard
//! recovery, and fingerprint-gated checkpoint rejection.
//!
//! The prescreen is graded where ground truth is exact: when the main
//! sweep uses the same n-gram family, predicted scores *equal* final
//! scores, so a margin-0 prescreen must keep every pair the exhaustive
//! sweep scores inside the validity band — on every plant, at every band
//! (the proptest below). The sharded sweep must recover from a killed
//! worker pool via its per-shard MDCK checkpoints, replaying completed
//! pairs byte-identically, and must refuse checkpoints written over a
//! different prescreen selection instead of silently resuming stale
//! models.

use mdes::core::{
    build_graph, build_graph_sharded, prescreen_pairs, CoreError, GraphBuildConfig,
    PrescreenConfig, ShardedSweepConfig, TrainedGraph,
};
use mdes::graph::ScoreRange;
use mdes::lang::{LanguagePipeline, RawTrace, WindowConfig};
use mdes::synth::plant::{generate, PlantConfig};
use std::path::PathBuf;

fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
    RawTrace::new(
        name,
        (0..n)
            .map(|t| {
                if ((t + phase) / period).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect(),
    )
}

/// Six mixed-period sensors: pairs sharing a period translate
/// near-perfectly, the rest poorly — enough score spread for sharding and
/// pruning to be non-trivial.
fn setup() -> (LanguagePipeline, Vec<RawTrace>) {
    let traces = vec![
        toggling("a", 600, 5, 0),
        toggling("b", 600, 5, 2),
        toggling("c", 600, 7, 0),
        toggling("d", 600, 7, 3),
        toggling("e", 600, 11, 0),
        toggling("f", 600, 13, 1),
    ];
    let cfg = WindowConfig {
        word_len: 4,
        word_stride: 1,
        sent_len: 5,
        sent_stride: 5,
    };
    let p = LanguagePipeline::fit(&traces, 0..300, cfg).expect("fit");
    (p, traces)
}

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|(i, j)| i != j)
        .collect()
}

/// Serialized graph with the nondeterministic `runtime_secs` stripped.
fn canonical_json(g: &TrainedGraph) -> String {
    let mut s = serde_json::to_string(g).expect("serialize");
    while let Some(i) = s.find("\"runtime_secs\":") {
        let end = s[i..].find(',').map(|d| i + d + 1).expect("field follows");
        s.replace_range(i..end, "");
    }
    s
}

/// A fresh checkpoint directory under the target-adjacent temp dir.
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdes_scalability_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_sweep_resumes_from_shard_checkpoints_byte_identically() {
    let (p, traces) = setup();
    let pairs = all_pairs(6); // 30 pairs -> 8 shards of <=4
    let dir = ckpt_dir("resume");
    let mut cfg = ShardedSweepConfig {
        build: GraphBuildConfig {
            threads: 1,
            ..GraphBuildConfig::default()
        },
        pairs_per_shard: 4,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        checkpoint_every: 1,
    };

    // Uninterrupted baseline, no checkpoints.
    let baseline_cfg = ShardedSweepConfig {
        checkpoint_dir: None,
        ..cfg.clone()
    };
    let (baseline, _) = build_graph_sharded(&p, &traces, 0..300, 300..450, &pairs, &baseline_cfg)
        .expect("baseline");

    // Kill the worker pool mid-fleet: the worker dies *outside* pair
    // isolation on the 11th pair (shard 2), after shards 0-1 checkpointed.
    cfg.build.chaos_lose_worker_pairs = vec![pairs[10]];
    let err = build_graph_sharded(&p, &traces, 0..300, 300..450, &pairs, &cfg)
        .expect_err("lost worker must fail the sweep");
    assert!(
        matches!(err, CoreError::WorkerLost { .. }),
        "expected WorkerLost, got {err:?}"
    );

    // Resume without the fault: completed shards replay from disk, the
    // rest train live, and the result matches the uninterrupted baseline.
    cfg.build.chaos_lose_worker_pairs.clear();
    let (resumed, report) =
        build_graph_sharded(&p, &traces, 0..300, 300..450, &pairs, &cfg).expect("resume");
    assert!(
        report.resumed >= 8,
        "shards completed before the kill must replay, resumed only {}",
        report.resumed
    );
    assert!(report.resumed < pairs.len(), "the kill left work to redo");
    assert_eq!(canonical_json(&baseline), canonical_json(&resumed));

    // A second resume replays *every* pair from the rewritten checkpoints:
    // byte-identical including per-model wall-clock timings.
    let (replayed, report2) =
        build_graph_sharded(&p, &traces, 0..300, 300..450, &pairs, &cfg).expect("replay");
    assert_eq!(report2.resumed, pairs.len());
    assert_eq!(
        serde_json::to_string(&resumed).expect("resumed json"),
        serde_json::to_string(&replayed).expect("replayed json"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_from_a_different_prescreen_selection_are_rejected() {
    let (p, traces) = setup();
    let pairs = all_pairs(6);
    let dir = ckpt_dir("stale");
    let cfg = ShardedSweepConfig {
        build: GraphBuildConfig {
            threads: 1,
            ..GraphBuildConfig::default()
        },
        pairs_per_shard: 4,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        checkpoint_every: 1,
    };
    build_graph_sharded(&p, &traces, 0..300, 300..450, &pairs, &cfg).expect("first sweep");

    // A narrower selection re-slices the shards: the stale files must be
    // rejected by fingerprint, not silently replayed.
    let narrowed: Vec<(usize, usize)> = pairs[1..].to_vec();
    let err = build_graph_sharded(&p, &traces, 0..300, 300..450, &narrowed, &cfg)
        .expect_err("stale checkpoints must not resume");
    match err {
        CoreError::Checkpoint { detail, .. } => {
            assert!(detail.contains("fingerprint mismatch"), "{detail}");
        }
        other => panic!("expected Checkpoint error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

mod prescreen_recall {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// With the sweep on the same n-gram family, a margin-0 prescreen
        /// never prunes a pair the exhaustive sweep scores inside the
        /// validity band — for random plants and random bands.
        #[test]
        fn pruning_never_removes_an_in_range_pair(
            seed in 0u64..1000,
            n_sensors in 4usize..8,
            lo in 0.0f64..80.0,
            span in 5.0f64..40.0,
        ) {
            let plant = generate(&PlantConfig {
                n_sensors,
                days: 4,
                minutes_per_day: 96,
                n_components: 2,
                anomaly_days: vec![],
                precursor_days: vec![],
                // All periodic: a rare-event sensor that never fires inside
                // this short horizon would be dropped as flat and shrink
                // the pair set below the test's interest.
                rare_fraction: 0.0,
                seed,
                ..PlantConfig::default()
            });
            let window = WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            };
            let train = plant.days_range(1, 2);
            let dev = plant.days_range(3, 3);
            let p = LanguagePipeline::fit(&plant.traces, train.clone(), window)
                .expect("fit languages");
            prop_assert!(p.sensor_count() >= 2);

            let train_sets = p.encode_segment(&plant.traces, train.clone()).expect("train");
            let dev_sets = p.encode_segment(&plant.traces, dev.clone()).expect("dev");
            let trained = build_graph(&p, &train_sets, &dev_sets, &GraphBuildConfig::default())
                .expect("exhaustive sweep");

            let range = ScoreRange::closed(lo, lo + span);
            let screened = prescreen_pairs(&p, &plant.traces, train, dev, &PrescreenConfig {
                range,
                margin: 0.0,
                ..PrescreenConfig::default()
            }).expect("prescreen");
            let survivors = screened.survivors();
            for m in trained.models() {
                if range.contains(m.train_score) {
                    prop_assert!(
                        survivors.binary_search(&(m.src, m.dst)).is_ok(),
                        "pruned in-range pair ({}, {}) scoring {}",
                        m.src, m.dst, m.train_score
                    );
                }
            }
        }
    }
}
