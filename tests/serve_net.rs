//! Protocol conformance suite for the `mdes-serve` network daemon
//! (DESIGN.md §12).
//!
//! Pins the acceptance criteria of the serving-daemon change:
//!
//! - every frame kind round-trips over loopback, including the refusal
//!   paths (bad width, unknown session, garbage bytes → typed `ProtoErr`
//!   + connection close);
//! - scores served over the network are **bit-identical** to in-process
//!   `ServingEngine` scores (`f64::to_bits`, not approximate equality);
//! - a session idle past the TTL is evicted and later pushes answer
//!   `Gone`;
//! - a snapshot uploaded through the admin plane hot-swaps mid-stream
//!   with the same windows-before/windows-after split as an in-process
//!   `publish`, bit-exactly;
//! - a snapshot that fails validation is rejected and the live model
//!   keeps serving the original scores;
//! - the admin plane answers `ping`/`stats`/`sessions`/`evict` in the
//!   documented `"| "`-data + status-line shape.

use mdes::core::serve::{GraphSnapshot, ServingEngine, StreamSession};
use mdes::core::{snapshot_to_bytes, Mdes, MdesConfig, OnlineDetection};
use mdes::graph::ScoreRange;
use mdes::lang::{RawTrace, WindowConfig};
use mdes::net::{
    start, IngestClient, PushEntry, PushOutcome, ServeConfig, ServerHandle, WireDetection,
};
use std::time::Duration;

fn square(name: &str, n: usize, phase: usize) -> RawTrace {
    RawTrace::new(
        name,
        (0..n)
            .map(|t| {
                if ((t + phase) / 5).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect(),
    )
}

fn traces() -> Vec<RawTrace> {
    vec![
        square("a", 710, 0),
        square("b", 710, 2),
        square("c", 710, 4),
    ]
}

fn base_config() -> MdesConfig {
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
    cfg
}

fn fitted() -> (Mdes, Vec<RawTrace>) {
    let traces = traces();
    let m = Mdes::fit(&traces, 0..300, 300..450, base_config()).expect("fit");
    (m, traces)
}

/// The same phase-slip stream `tests/serving.rs` uses, so detections are
/// non-trivial.
fn slipped_sample(traces: &[RawTrace], t: usize) -> Vec<Option<String>> {
    traces
        .iter()
        .enumerate()
        .map(|(k, tr)| {
            Some(if k == 1 && t >= 520 {
                tr.events[t + 3].clone()
            } else {
                tr.events[t].clone()
            })
        })
        .collect()
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        admin_addr: Some("127.0.0.1:0".to_owned()),
        ..ServeConfig::default()
    }
}

fn serve_fitted(cfg: ServeConfig) -> (ServerHandle, Vec<RawTrace>) {
    let (m, traces) = fitted();
    let engine = ServingEngine::new(GraphSnapshot::freeze(&m));
    (start(engine, cfg).expect("start server"), traces)
}

/// Streams `range` through one network session, collecting detections.
/// Keeps at most `window` pushes outstanding (below the server's queue
/// capacity, so no `Busy` can occur and replies stay in push order).
fn stream_network(
    client: &mut IngestClient,
    session: u64,
    traces: &[RawTrace],
    range: std::ops::Range<usize>,
) -> Vec<OnlineDetection> {
    let window = 32usize;
    let ticks: Vec<usize> = range.collect();
    let mut out = Vec::new();
    for chunk in ticks.chunks(window) {
        let entries: Vec<PushEntry> = chunk
            .iter()
            .map(|&t| PushEntry {
                session,
                seq: t as u64,
                records: slipped_sample(traces, t),
            })
            .collect();
        let n = entries.len();
        client.send_push_batch(entries).expect("send batch");
        for reply in client.recv_push_replies(n).expect("recv replies") {
            assert_eq!(reply.session, session);
            match reply.outcome {
                PushOutcome::Ack => {}
                PushOutcome::Score(w) => out.push(OnlineDetection::from(w)),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
    out
}

/// The in-process reference for the same stream.
fn stream_in_process(
    engine: &ServingEngine,
    session: &mut StreamSession,
    traces: &[RawTrace],
    range: std::ops::Range<usize>,
) -> Vec<OnlineDetection> {
    let mut out = Vec::new();
    for t in range {
        if let Some(d) = engine
            .push_opt(session, &slipped_sample(traces, t))
            .expect("push")
        {
            out.push(d);
        }
    }
    out
}

fn assert_bit_identical(net: &[OnlineDetection], local: &[OnlineDetection]) {
    assert_eq!(net.len(), local.len(), "emission grids must match");
    for (i, (n, l)) in net.iter().zip(local).enumerate() {
        assert_eq!(
            n.score.to_bits(),
            l.score.to_bits(),
            "window {i}: score must be bit-identical"
        );
        assert_eq!(
            n.coverage.to_bits(),
            l.coverage.to_bits(),
            "window {i}: coverage must be bit-identical"
        );
        assert_eq!(n.sample_index, l.sample_index, "window {i}");
        assert_eq!(n.alerts, l.alerts, "window {i}");
        assert_eq!(n.dropped_sensors, l.dropped_sensors, "window {i}");
    }
}

#[test]
fn every_frame_kind_round_trips_over_loopback() {
    let (server, _traces) = serve_fitted(test_config());
    let mut client = IngestClient::connect(server.addr()).expect("connect");

    // Ping / Pong.
    client.ping().expect("ping");

    // OpenSession / SessionOpened — accepted...
    let (session, warmup) = client.open_session(3).expect("open");
    assert!(session > 0);
    assert!(warmup > 0, "fresh session needs warmup samples");

    // ...and refused (width below the snapshot's minimum) without closing
    // the connection.
    let err = client.open_session(1).expect_err("bad width must refuse");
    assert!(
        matches!(err, mdes::net::ClientError::Refused(_)),
        "got {err:?}"
    );
    client.ping().expect("connection survives a refused open");

    // PushBatch / PushReply: Ack (warmup), then Gone for a bogus session.
    client
        .send_push_batch(vec![
            PushEntry {
                session,
                seq: 1,
                records: vec![Some("on".into()), Some("on".into()), Some("on".into())],
            },
            PushEntry {
                session: 0xdead,
                seq: 2,
                records: vec![Some("on".into()), Some("on".into()), Some("on".into())],
            },
        ])
        .expect("send");
    let mut replies = client.recv_push_replies(2).expect("replies");
    replies.sort_by_key(|r| r.seq);
    assert_eq!(replies[0].outcome, PushOutcome::Ack);
    assert_eq!(replies[1].outcome, PushOutcome::Gone);

    // Engine-level refusal: wrong sample width is an Error outcome, not a
    // dead connection.
    client
        .send_push_batch(vec![PushEntry {
            session,
            seq: 3,
            records: vec![Some("on".into())],
        }])
        .expect("send");
    let replies = client.recv_push_replies(1).expect("replies");
    assert!(
        matches!(replies[0].outcome, PushOutcome::Error { .. }),
        "got {:?}",
        replies[0].outcome
    );

    // CloseSession / SessionClosed, idempotent second close.
    assert!(client.close_session(session).expect("close"));
    assert!(!client.close_session(session).expect("close again"));

    // A push to the closed session answers Gone.
    client
        .send_push_batch(vec![PushEntry {
            session,
            seq: 4,
            records: vec![Some("on".into()), Some("on".into()), Some("on".into())],
        }])
        .expect("send");
    assert_eq!(
        client.recv_push_replies(1).expect("replies")[0].outcome,
        PushOutcome::Gone
    );

    // Garbage bytes → typed ProtoErr frame, then the server closes.
    let mut garbage = IngestClient::connect(server.addr()).expect("connect");
    garbage.send_raw(b"XXXXXXXXXXXXXXXXXXXXXXXX").expect("raw");
    let err = garbage
        .ping()
        .expect_err("garbage must kill the connection");
    match err {
        mdes::net::ClientError::Refused(detail) => {
            assert!(detail.starts_with("bad_magic"), "got {detail}");
        }
        other => panic!("expected typed refusal, got {other:?}"),
    }

    server.stop();
}

#[test]
fn network_scores_are_bit_identical_to_in_process() {
    let (m, traces) = fitted();
    let snapshot = GraphSnapshot::freeze(&m);

    // In-process reference.
    let reference_engine = ServingEngine::new(snapshot.clone());
    let mut reference_session = reference_engine.open_session(3).expect("session");
    let reference = stream_in_process(&reference_engine, &mut reference_session, &traces, 450..700);
    assert!(
        !reference.is_empty(),
        "fixture must emit detections for the comparison to mean anything"
    );

    // Network run over the same snapshot.
    let server = start(ServingEngine::new(snapshot), test_config()).expect("start");
    let mut client = IngestClient::connect(server.addr()).expect("connect");
    let (session, _) = client.open_session(3).expect("open");
    let served = stream_network(&mut client, session, &traces, 450..700);

    assert_bit_identical(&served, &reference);
    server.stop();
}

#[test]
fn idle_sessions_are_evicted_after_the_ttl() {
    let cfg = ServeConfig {
        idle_ttl: Duration::from_millis(400),
        ..test_config()
    };
    let (server, _traces) = serve_fitted(cfg);
    let mut client = IngestClient::connect(server.addr()).expect("connect");
    let (session, _) = client.open_session(3).expect("open");
    assert_eq!(server.session_count(), 1);

    // Survives while active: keep touching it for a while.
    for i in 0..4 {
        client
            .send_push_batch(vec![PushEntry {
                session,
                seq: i,
                records: vec![Some("on".into()), Some("on".into()), Some("on".into())],
            }])
            .expect("send");
        assert_eq!(
            client.recv_push_replies(1).expect("reply")[0].outcome,
            PushOutcome::Ack
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(server.session_count(), 1, "active session must survive");

    // Goes idle → reaped.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.session_count() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "idle session was never evicted"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // A push to the evicted session answers Gone.
    client
        .send_push_batch(vec![PushEntry {
            session,
            seq: 99,
            records: vec![Some("on".into()), Some("on".into()), Some("on".into())],
        }])
        .expect("send");
    assert_eq!(
        client.recv_push_replies(1).expect("reply")[0].outcome,
        PushOutcome::Gone
    );
    server.stop();
}

/// Two compatible-but-different snapshots (same construction as
/// `tests/serving.rs`): B is trained on the slipped phase relationship, so
/// the two disagree on post-slip windows of the replayed stream.
fn snapshot_pair() -> (GraphSnapshot, GraphSnapshot, Vec<RawTrace>) {
    let (m_a, traces) = fitted();
    let traces_b = vec![
        square("a", 710, 0),
        square("b", 710, 5),
        square("c", 710, 4),
    ];
    let m_b = Mdes::fit(&traces_b, 0..300, 300..450, base_config()).expect("fit B");
    (
        GraphSnapshot::freeze(&m_a),
        GraphSnapshot::freeze(&m_b),
        traces,
    )
}

#[test]
fn admin_publish_hot_swaps_mid_stream_bit_exactly() {
    let (snap_a, snap_b, traces) = snapshot_pair();
    let swap_at = 553;

    // In-process mirror: publish between the same two pushes.
    let mirror = ServingEngine::new(snap_a.clone());
    let mut mirror_session = mirror.open_session(3).expect("session");
    let mut reference = stream_in_process(&mirror, &mut mirror_session, &traces, 450..swap_at);
    mirror.publish(snap_b.clone()).expect("publish");
    reference.extend(stream_in_process(
        &mirror,
        &mut mirror_session,
        &traces,
        swap_at..700,
    ));

    // Network run: quiesce (all replies drained), upload B, continue.
    let server = start(ServingEngine::new(snap_a), test_config()).expect("start");
    let mut client = IngestClient::connect(server.addr()).expect("connect");
    let mut admin =
        mdes::net::AdminClient::connect(server.admin_addr().expect("admin plane")).expect("admin");
    let (session, _) = client.open_session(3).expect("open");
    let mut served = stream_network(&mut client, session, &traces, 450..swap_at);

    let bytes = snapshot_to_bytes(&snap_b).expect("serialize");
    let (_, status) = admin.publish(&bytes).expect("publish cmd");
    assert_eq!(status, "ok published version=2", "got {status:?}");

    served.extend(stream_network(&mut client, session, &traces, swap_at..700));
    assert_bit_identical(&served, &reference);
    server.stop();
}

#[test]
fn rejected_publish_never_goes_live() {
    let (m, traces) = fitted();
    let snap = GraphSnapshot::freeze(&m);

    // Reference: the original snapshot all the way through.
    let reference_engine = ServingEngine::new(snap.clone());
    let mut reference_session = reference_engine.open_session(3).expect("session");
    let reference = stream_in_process(&reference_engine, &mut reference_session, &traces, 450..700);

    let server = start(ServingEngine::new(snap), test_config()).expect("start");
    let mut client = IngestClient::connect(server.addr()).expect("connect");
    let mut admin =
        mdes::net::AdminClient::connect(server.admin_addr().expect("admin plane")).expect("admin");
    let (session, _) = client.open_session(3).expect("open");
    let mut served = stream_network(&mut client, session, &traces, 450..570);

    // An artifact with different windowing must be refused...
    let mut cfg = base_config();
    cfg.window.sent_len = 6;
    let other = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit other");
    let bytes = snapshot_to_bytes(&GraphSnapshot::freeze(&other)).expect("serialize");
    let (_, status) = admin.publish(&bytes).expect("publish cmd");
    assert!(status.starts_with("err publish rejected"), "got {status:?}");

    // ...as must outright garbage...
    let (_, status) = admin.publish(b"not a snapshot").expect("publish cmd");
    assert!(status.starts_with("err publish rejected"), "got {status:?}");

    // ...and neither may disturb the live model or bump the version.
    let (data, status) = admin.cmd("stats").expect("stats");
    assert_eq!(status, "ok");
    assert!(
        data[0].contains("snapshot_version=1"),
        "version must not advance: {data:?}"
    );
    served.extend(stream_network(&mut client, session, &traces, 570..700));
    assert_bit_identical(&served, &reference);
    server.stop();
}

#[test]
fn admin_plane_speaks_the_documented_shape() {
    let (server, _traces) = serve_fitted(test_config());
    let mut admin =
        mdes::net::AdminClient::connect(server.admin_addr().expect("admin plane")).expect("admin");

    let (data, status) = admin.cmd("ping").expect("ping");
    assert!(data.is_empty());
    assert_eq!(status, "ok pong");

    let (_, status) = admin.cmd("bogus-command").expect("bogus");
    assert!(status.starts_with("err unknown command"));

    let (data, status) = admin.cmd("sessions").expect("sessions");
    assert!(data.is_empty());
    assert_eq!(status, "ok 0 sessions");

    let mut client = IngestClient::connect(server.addr()).expect("connect");
    let (session, _) = client.open_session(3).expect("open");
    let (data, status) = admin.cmd("sessions").expect("sessions");
    assert_eq!(status, "ok 1 sessions");
    assert!(
        data[0].contains(&format!("id={session}")) && data[0].contains("width=3"),
        "got {data:?}"
    );

    let (data, status) = admin.cmd("stats").expect("stats");
    assert_eq!(status, "ok");
    assert!(data[0].contains("sessions=1"), "got {data:?}");
    // The active artifact's identity: weight encoding, footprint, and the
    // number of frozen pair models (3 sensors -> 6 ordered pairs).
    assert!(data[0].contains("snapshot_format=f32"), "got {data:?}");
    assert!(data[0].contains("pair_models=6"), "got {data:?}");
    let bytes: usize = data[0]
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("snapshot_bytes="))
        .expect("snapshot_bytes field")
        .parse()
        .expect("numeric byte count");
    assert!(bytes > 0, "got {data:?}");

    // Forced eviction through the admin plane.
    let (_, status) = admin.cmd(&format!("evict {session}")).expect("evict");
    assert_eq!(status, format!("ok evicted {session}"));
    let (_, status) = admin.cmd(&format!("evict {session}")).expect("re-evict");
    assert!(status.starts_with("err unknown session"));
    assert_eq!(server.session_count(), 0);

    // The wire detection helper visible to clients is lossless both ways.
    let d = OnlineDetection {
        sample_index: 3,
        score: 0.1 + 0.2,
        coverage: 2.0 / 3.0,
        alerts: vec![(0, 1)],
        dropped_sensors: vec![],
    };
    let w = WireDetection::from(d.clone());
    assert_eq!(OnlineDetection::from(w), d);

    server.stop();
}

#[test]
fn quantized_snapshot_round_trips_through_network_publish() {
    use mdes::core::serve::QuantPolicy;
    use mdes::core::{QuantMode, TranslatorConfig};

    // A two-sensor plant trained with the paper's neural family — the
    // statistical default carries no weights to quantize. The detection
    // margin keeps quantization noise from flipping broken decisions on
    // this tiny plant.
    let traces = vec![square("a", 710, 0), square("b", 710, 2)];
    let mut cfg = base_config();
    cfg.build.translator = TranslatorConfig::neural();
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    cfg.detection.margin = 5.0;
    let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
    let snap = GraphSnapshot::freeze(&m);
    let sets = m
        .language()
        .encode_segment(&traces, 450..700)
        .expect("encode");
    let q = snap
        .quantize_calibrated(QuantMode::Int8, &QuantPolicy::default(), &sets)
        .expect("quantize");
    let score_bound = q.quant().expect("calibration record").score_bound;
    let q_bytes = snapshot_to_bytes(&q).expect("serialize");

    // In-process references: the f32 artifact all the way through, and the
    // same mid-stream hot-swap the network path will perform.
    let f32_engine = ServingEngine::new(snap.clone());
    let mut f32_session = f32_engine.open_session(2).expect("session");
    let f32_all = stream_in_process(&f32_engine, &mut f32_session, &traces, 450..700);

    let swap_engine = ServingEngine::new(snap.clone());
    let mut swap_session = swap_engine.open_session(2).expect("session");
    let mut reference = stream_in_process(&swap_engine, &mut swap_session, &traces, 450..570);
    swap_engine.publish(q.clone()).expect("in-process publish");
    reference.extend(stream_in_process(
        &swap_engine,
        &mut swap_session,
        &traces,
        570..700,
    ));

    // The network path: stream, upload the quantized artifact through the
    // admin plane, keep streaming against the swapped-in weights.
    let server = start(ServingEngine::new(snap), test_config()).expect("start");
    let mut client = IngestClient::connect(server.addr()).expect("connect");
    let mut admin =
        mdes::net::AdminClient::connect(server.admin_addr().expect("admin plane")).expect("admin");
    let (session, _) = client.open_session(2).expect("open");
    let mut served = stream_network(&mut client, session, &traces, 450..570);
    let (_, status) = admin.publish(&q_bytes).expect("publish cmd");
    assert!(status.starts_with("ok published"), "got {status:?}");
    let (data, status) = admin.cmd("stats").expect("stats");
    assert_eq!(status, "ok");
    assert!(data[0].contains("snapshot_format=int8"), "got {data:?}");
    assert!(data[0].contains("pair_models=2"), "got {data:?}");
    served.extend(stream_network(&mut client, session, &traces, 570..700));

    // Bit-identical to the in-process hot-swap, and every post-swap window
    // stays within the artifact's own declared score-drift bound of the
    // f32 reference.
    assert_bit_identical(&served, &reference);
    assert_eq!(served.len(), f32_all.len());
    for (s, f) in served.iter().zip(&f32_all) {
        assert!(
            (s.score - f.score).abs() <= score_bound,
            "window {}: quantized score {} drifted past {score_bound} from f32 {}",
            s.sample_index,
            s.score,
            f.score
        );
    }
    server.stop();
}
