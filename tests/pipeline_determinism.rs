//! Thread-count invariance of the full pipeline.
//!
//! Algorithm 1's sweep distributes sensor pairs over worker threads, but each
//! pair model is trained independently and deterministically, so the fitted
//! framework must not depend on the thread count in any way. These tests
//! extend the `multithreaded_matches_single_thread` unit test (which compares
//! graphs on a toy corpus) to the whole [`Mdes`] pipeline on synthetic plant
//! data: the serialized MVRG must be byte identical between a
//! single-threaded and a four-threaded fit, for both translator families;
//! every pair model's score and calibrated floor must match; and detection on
//! the fitted instance must agree too (for NMT that exercises every decoder
//! weight of every pair model).

use mdes::core::{Mdes, MdesConfig, TranslatorConfig};
use mdes::graph::ScoreRange;
use mdes::lang::WindowConfig;
use mdes::nn::Seq2SeqConfig;
use mdes::synth::plant::{generate, PlantConfig};

struct FitOutput {
    /// The serialized multivariate relationship graph.
    graph_json: String,
    /// `(src, dst, train_score, dev_floor)` per pair model.
    models: Vec<(usize, usize, f64, f64)>,
    /// Anomaly scores on the held-out anomalous day.
    detection: Vec<f64>,
}

/// Fits the same plant with the given thread count.
fn fit_plant(threads: usize, translator: TranslatorConfig) -> FitOutput {
    let plant = generate(&PlantConfig {
        n_sensors: 6,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![7],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.build.translator = translator;
    cfg.build.threads = threads;
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 3),
        plant.days_range(4, 5),
        cfg,
    )
    .expect("fit");
    FitOutput {
        graph_json: serde_json::to_string(m.graph()).expect("serialize"),
        models: m
            .trained()
            .models()
            .iter()
            .map(|p| (p.src, p.dst, p.train_score, p.dev_floor))
            .collect(),
        detection: m
            .detect_range(&plant.traces, plant.day_range(7))
            .expect("detect")
            .scores,
    }
}

#[test]
fn ngram_pipeline_identical_across_thread_counts() {
    let one = fit_plant(1, TranslatorConfig::fast());
    let four = fit_plant(4, TranslatorConfig::fast());
    assert_eq!(
        one.graph_json, four.graph_json,
        "MVRG differs across thread counts"
    );
    assert_eq!(one.models, four.models);
    assert_eq!(one.detection, four.detection);
}

#[test]
fn nmt_pipeline_identical_across_thread_counts() {
    let tiny = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 10,
        hidden: 10,
        train_steps: 25,
        ..Seq2SeqConfig::default()
    });
    let one = fit_plant(1, tiny.clone());
    let four = fit_plant(4, tiny);
    assert_eq!(
        one.graph_json, four.graph_json,
        "MVRG differs across thread counts"
    );
    assert_eq!(one.models, four.models);
    assert_eq!(one.detection, four.detection);
}
