//! Thread-count invariance of the full pipeline.
//!
//! Algorithm 1's sweep distributes sensor pairs over worker threads, but each
//! pair model is trained independently and deterministically, so the fitted
//! framework must not depend on the thread count in any way. These tests
//! extend the `multithreaded_matches_single_thread` unit test (which compares
//! graphs on a toy corpus) to the whole [`Mdes`] pipeline on synthetic plant
//! data: the serialized MVRG must be byte identical between a
//! single-threaded and a four-threaded fit, for both translator families;
//! every pair model's score and calibrated floor must match; and detection on
//! the fitted instance must agree too (for NMT that exercises every decoder
//! weight of every pair model).

use mdes::core::{detect, detect_excluding, Mdes, MdesConfig, TranslatorConfig};
use mdes::graph::ScoreRange;
use mdes::lang::WindowConfig;
use mdes::nn::Seq2SeqConfig;
use mdes::synth::plant::{generate, PlantConfig};

struct FitOutput {
    /// The serialized multivariate relationship graph.
    graph_json: String,
    /// `(src, dst, train_score, dev_floor)` per pair model.
    models: Vec<(usize, usize, f64, f64)>,
    /// Anomaly scores on the held-out anomalous day.
    detection: Vec<f64>,
}

/// Fits the same plant with the given thread count.
fn fit_plant(threads: usize, translator: TranslatorConfig) -> FitOutput {
    let plant = generate(&PlantConfig {
        n_sensors: 6,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![7],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.build.translator = translator;
    cfg.build.threads = threads;
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 3),
        plant.days_range(4, 5),
        cfg,
    )
    .expect("fit");
    FitOutput {
        graph_json: serde_json::to_string(m.graph()).expect("serialize"),
        models: m
            .trained()
            .models()
            .iter()
            .map(|p| (p.src, p.dst, p.train_score, p.dev_floor))
            .collect(),
        detection: m
            .detect_range(&plant.traces, plant.day_range(7))
            .expect("detect")
            .scores,
    }
}

#[test]
fn ngram_pipeline_identical_across_thread_counts() {
    let one = fit_plant(1, TranslatorConfig::fast());
    let four = fit_plant(4, TranslatorConfig::fast());
    assert_eq!(
        one.graph_json, four.graph_json,
        "MVRG differs across thread counts"
    );
    assert_eq!(one.models, four.models);
    assert_eq!(one.detection, four.detection);
}

/// Algorithm 2's per-model loop also runs on a worker pool; the merged
/// result (scores, alert order, coverage — the whole serialized
/// `DetectionResult`) must be byte identical to a serial run at any thread
/// count, with and without excluded sensors.
#[test]
fn detection_identical_across_thread_counts() {
    let plant = generate(&PlantConfig {
        n_sensors: 6,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![7],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.build.translator = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 10,
        hidden: 10,
        train_steps: 25,
        ..Seq2SeqConfig::default()
    });
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 3),
        plant.days_range(4, 5),
        cfg,
    )
    .expect("fit");
    let sets = m
        .language()
        .encode_segment(&plant.traces, plant.day_range(7))
        .expect("encode");

    let mut dcfg = m.config().detection.clone();
    dcfg.threads = 1;
    let serial_full = serde_json::to_string(&detect(m.trained(), &sets, &dcfg).expect("serial"))
        .expect("serialize");
    let serial_excl = serde_json::to_string(
        &detect_excluding(m.trained(), &sets, &dcfg, &[1]).expect("serial excluding"),
    )
    .expect("serialize");
    for threads in [2, 4] {
        dcfg.threads = threads;
        let full = serde_json::to_string(&detect(m.trained(), &sets, &dcfg).expect("parallel"))
            .expect("serialize");
        assert_eq!(
            serial_full, full,
            "detect differs between 1 and {threads} threads"
        );
        let excl = serde_json::to_string(
            &detect_excluding(m.trained(), &sets, &dcfg, &[1]).expect("parallel excluding"),
        )
        .expect("serialize");
        assert_eq!(
            serial_excl, excl,
            "detect_excluding differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn nmt_pipeline_identical_across_thread_counts() {
    let tiny = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 10,
        hidden: 10,
        train_steps: 25,
        ..Seq2SeqConfig::default()
    });
    let one = fit_plant(1, tiny.clone());
    let four = fit_plant(4, tiny);
    assert_eq!(
        one.graph_json, four.graph_json,
        "MVRG differs across thread counts"
    );
    assert_eq!(one.models, four.models);
    assert_eq!(one.detection, four.detection);
}
