//! End-to-end integration test of case study I: synthetic plant -> language
//! pipeline -> pairwise translation graph -> anomaly detection -> diagnosis.

use mdes::core::{Mdes, MdesConfig};
use mdes::graph::ScoreRange;
use mdes::lang::WindowConfig;
use mdes::synth::plant::{generate, PlantConfig};

fn plant() -> mdes::synth::plant::PlantData {
    generate(&PlantConfig {
        n_sensors: 12,
        days: 12,
        minutes_per_day: 288,
        n_components: 3,
        anomaly_days: vec![11],
        precursor_days: vec![10],
        ..PlantConfig::default()
    })
}

fn config() -> MdesConfig {
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 6,
            word_stride: 1,
            sent_len: 8,
            sent_stride: 8,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(40.0, 100.0);
    cfg
}

#[test]
fn full_pipeline_detects_injected_anomaly() {
    let plant = plant();
    let mdes = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        config(),
    )
    .expect("fit");

    // Dense directed graph over surviving sensors.
    let n = mdes.language().sensor_count();
    assert!(n >= 2);
    assert_eq!(mdes.graph().edge_count(), n * (n - 1));
    assert!(mdes
        .graph()
        .edges()
        .all(|(_, _, w)| (0.0..=100.0).contains(&w)));

    // The injected anomaly (day 11) scores above a quiet day (day 8).
    let normal = mdes
        .detect_range(&plant.traces, plant.day_range(8))
        .expect("normal");
    let anomalous = mdes
        .detect_range(&plant.traces, plant.day_range(11))
        .expect("anomalous");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&anomalous.scores) > mean(&normal.scores) + 0.1,
        "anomaly {:.3} vs normal {:.3}",
        mean(&anomalous.scores),
        mean(&normal.scores)
    );

    // Diagnosis of the worst window produces a consistent sensor ranking.
    let worst = (0..anomalous.scores.len())
        .max_by(|&a, &b| anomalous.scores[a].total_cmp(&anomalous.scores[b]))
        .expect("non-empty");
    let diag = mdes.diagnose_alerts(&anomalous.alerts[worst]);
    let alerted: std::collections::HashSet<usize> = anomalous.alerts[worst]
        .iter()
        .flat_map(|&(s, d)| [s, d])
        .collect();
    assert_eq!(diag.sensor_ranking.len(), alerted.len());
    for window in &diag.faulty_clusters {
        assert!(window.len() >= 2, "clusters need at least one edge");
    }
}

#[test]
fn detection_scores_are_valid_probabilities() {
    let plant = plant();
    let mdes = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        config(),
    )
    .expect("fit");
    let result = mdes
        .detect_range(&plant.traces, plant.days_range(7, 12))
        .expect("detect");
    assert!(!result.scores.is_empty());
    assert!(result.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    assert_eq!(result.scores.len(), result.alerts.len());
    assert_eq!(result.scores.len(), result.starts.len());
    for (t, alerts) in result.alerts.iter().enumerate() {
        let expected = alerts.len() as f64 / result.valid_models as f64;
        assert!((result.scores[t] - expected).abs() < 1e-12);
    }
}

#[test]
fn refitting_is_deterministic() {
    let plant = plant();
    let a = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        config(),
    )
    .expect("fit a");
    let b = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        config(),
    )
    .expect("fit b");
    assert_eq!(a.graph(), b.graph());
    let ra = a
        .detect_range(&plant.traces, plant.day_range(9))
        .expect("detect a");
    let rb = b
        .detect_range(&plant.traces, plant.day_range(9))
        .expect("detect b");
    assert_eq!(ra, rb);
}

#[test]
fn global_and_local_subgraphs_partition_consistently() {
    let plant = plant();
    let mdes = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        config(),
    )
    .expect("fit");
    let total: usize = ScoreRange::paper_buckets()
        .iter()
        .map(|r| mdes.global_subgraph(r).edge_count())
        .sum();
    assert_eq!(
        total,
        mdes.graph().edge_count(),
        "buckets must partition all edges"
    );
    for r in ScoreRange::paper_buckets() {
        let global = mdes.global_subgraph(&r);
        let local = mdes.local_subgraph(&r, Some(3));
        assert!(local.edge_count() <= global.edge_count());
    }
}
