//! Cross-crate integration: the neural and statistical translators must
//! agree on relationship structure, and the seq2seq + BLEU combination must
//! behave sanely on coupled vs uncoupled sensor languages.

use mdes::bleu::{corpus_bleu, BleuConfig};
use mdes::core::{train_translator, Translator, TranslatorConfig};
use mdes::lang::{LanguagePipeline, RawTrace, Vocab, WindowConfig};
use mdes::nn::Seq2SeqConfig;

fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
    RawTrace::new(
        name,
        (0..n)
            .map(|t| {
                if ((t + phase) / period).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect(),
    )
}

/// Trains one directional translator and scores it on the dev segment.
fn pair_score(cfg: &TranslatorConfig, src: usize, dst: usize) -> f64 {
    let traces = vec![
        toggling("a", 700, 5, 0),
        toggling("b", 700, 5, 2),
        toggling("c", 700, 7, 3),
    ];
    let wcfg = WindowConfig {
        word_len: 4,
        word_stride: 1,
        sent_len: 5,
        sent_stride: 5,
    };
    let pipeline = LanguagePipeline::fit(&traces, 0..400, wcfg).expect("fit");
    let train = pipeline.encode_segment(&traces, 0..400).expect("train");
    let dev = pipeline.encode_segment(&traces, 400..700).expect("dev");
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = train[src]
        .sentences
        .iter()
        .zip(&train[dst].sentences)
        .map(|(s, t)| (s.clone(), t.clone()))
        .collect();
    let translator = train_translator(
        cfg,
        &pairs,
        pipeline.languages()[src].vocab.size(),
        pipeline.languages()[dst].vocab.size(),
        Vocab::BOS,
    )
    .expect("train translator");
    let hyps: Vec<Vec<u32>> = dev[src]
        .sentences
        .iter()
        .map(|s| translator.translate(s, 5))
        .collect();
    corpus_bleu(&hyps, &dev[dst].sentences, &BleuConfig::sentence())
}

#[test]
fn both_translators_rank_related_above_unrelated() {
    let nmt = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 16,
        hidden: 16,
        train_steps: 120,
        ..Seq2SeqConfig::default()
    });
    for cfg in [TranslatorConfig::fast(), nmt] {
        let related = pair_score(&cfg, 0, 1); // same period, fixed phase
        let unrelated = pair_score(&cfg, 0, 2); // different period
        assert!(
            related > unrelated + 10.0,
            "{cfg:?}: related {related:.1} should beat unrelated {unrelated:.1}"
        );
        assert!(
            related > 70.0,
            "{cfg:?}: related pair too weak: {related:.1}"
        );
    }
}

#[test]
fn perfect_translation_scores_100_bleu() {
    // Translating a sensor into itself (identity pair) must be learnable to
    // a perfect corpus BLEU by the statistical model.
    let score = pair_score(&TranslatorConfig::fast(), 1, 1);
    assert!((score - 100.0).abs() < 1e-6, "identity score {score}");
}

#[test]
fn translators_expose_deterministic_output() {
    let cfg = TranslatorConfig::fast();
    let a = pair_score(&cfg, 0, 1);
    let b = pair_score(&cfg, 0, 1);
    assert_eq!(a, b);
}
