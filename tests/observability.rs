//! Integration tests for the observability layer (DESIGN.md §10).
//!
//! Covers the PR's acceptance criteria: with a recorder installed, the
//! emitted counters reconcile exactly with the values the pipeline returns;
//! with no recorder installed, instrumented paths produce bit-identical
//! output; checkpoint truncation recovery reports through `mdes-obs`.
//!
//! The recorder is process-global and `cargo test` runs test functions on
//! parallel threads, so every test that installs a recorder serializes on
//! [`OBS_LOCK`] and uninstalls before releasing it.

use mdes::core::{
    detect, read_checkpoint, write_checkpoint, CheckpointData, Mdes, MdesConfig, OnlineMonitor,
};
use mdes::graph::ScoreRange;
use mdes::lang::{LanguagePipeline, RawTrace, WindowConfig};
use mdes::obs::Recorder;
use std::sync::{Arc, Mutex};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with a fresh recorder installed, serialized against other
/// recorder-installing tests, and uninstalls afterwards even on panic.
fn with_recorder<T>(f: impl FnOnce(&Recorder) -> T) -> T {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            mdes::obs::uninstall();
        }
    }
    let recorder = Arc::new(Recorder::new());
    mdes::obs::install(recorder.clone());
    let _cleanup = Uninstall;
    f(&recorder)
}

/// Two phase-locked square-wave sensors plus a noisy one: trains in well
/// under a second with the default n-gram translator.
fn toy_traces() -> Vec<RawTrace> {
    let mk = |phase: usize| {
        RawTrace::new(
            format!("s{phase}"),
            (0..900)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    };
    let noise = RawTrace::new(
        "noise",
        (0..900)
            .map(|t| if (t * 7 + t / 3) % 5 < 2 { "a" } else { "b" }.to_owned())
            .collect(),
    );
    vec![mk(0), mk(2), noise]
}

fn toy_config() -> MdesConfig {
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    cfg
}

#[test]
fn counters_reconcile_with_pipeline_outputs() {
    with_recorder(|r| {
        let traces = toy_traces();
        let m = Mdes::fit(&traces, 0..300, 300..500, toy_config()).expect("fit");
        let trained = m.trained().models().len();
        let quarantined = m.trained().quarantined().len();
        assert_eq!(r.counter_value("algo1.pairs_trained"), trained as u64);
        assert_eq!(
            r.counter_value("algo1.pairs_quarantined"),
            quarantined as u64
        );
        assert_eq!(
            r.histogram("algo1.pair").expect("pair spans").count,
            (trained + quarantined) as u64
        );
        assert_eq!(r.histogram("algo1.sweep").expect("sweep span").count, 1);

        let result = m.detect_range(&traces, 500..900).expect("detect");
        let broken: usize = result.alerts.iter().map(Vec::len).sum();
        assert_eq!(r.counter_value("algo2.broken"), broken as u64);
        assert_eq!(r.counter_value("algo2.windows"), result.scores.len() as u64);
        assert_eq!(
            r.counter_value("algo2.evaluations"),
            (result.valid_models * result.scores.len()) as u64
        );
        assert!(r.histogram("algo2.model_decode_us").is_some());
        assert!(r.histogram("algo2.batch_size").is_some());
    });
}

#[test]
fn online_monitor_reports_windows_and_dropout_transitions() {
    with_recorder(|r| {
        let traces = toy_traces();
        let m = Mdes::fit(&traces, 0..300, 300..500, toy_config()).expect("fit");
        let mut monitor: OnlineMonitor = m
            .try_into_online_monitor(traces.len())
            .expect("monitor width");
        let mut emitted = 0u64;
        for t in 500..800 {
            // Sensor 1 goes silent for samples 600..650.
            let sample: Vec<Option<String>> = traces
                .iter()
                .enumerate()
                .map(|(i, tr)| {
                    if i == 1 && (600..650).contains(&t) {
                        None
                    } else {
                        Some(tr.events[t].clone())
                    }
                })
                .collect();
            if monitor.push_opt(&sample).expect("push").is_some() {
                emitted += 1;
            }
        }
        assert!(emitted > 0);
        assert_eq!(r.counter_value("online.windows"), emitted);
        assert_eq!(
            r.histogram("online.push").expect("push spans").count,
            emitted
        );
        assert_eq!(r.counter_value("online.sensor_dropped"), 1);
        assert_eq!(r.counter_value("online.sensor_readmitted"), 1);
    });
}

#[test]
fn no_recorder_output_is_bit_identical() {
    let traces = toy_traces();
    let cfg = toy_config();
    let pipeline = LanguagePipeline::fit(&traces, 0..300, cfg.window).expect("language pipeline");
    let test_sets = pipeline.encode_segment(&traces, 500..900).expect("encode");

    let m = Mdes::fit(&traces, 0..300, 300..500, cfg.clone()).expect("fit bare");
    let bare = detect(m.trained(), &test_sets, &cfg.detection).expect("detect bare");
    let (recorded, with_obs) = with_recorder(|r| {
        let m = Mdes::fit(&traces, 0..300, 300..500, cfg.clone()).expect("fit recorded");
        let result = detect(m.trained(), &test_sets, &cfg.detection).expect("detect recorded");
        (result, r.counter_value("algo1.pairs_trained"))
    });
    assert!(with_obs > 0, "recorder saw the instrumented run");
    assert_eq!(bare.scores, recorded.scores, "scores must be bit-identical");
    assert_eq!(bare.alerts, recorded.alerts);
    assert_eq!(bare.valid_models, recorded.valid_models);
}

#[test]
fn checkpoint_truncation_recovery_reports_through_obs() {
    let dir = std::env::temp_dir().join(format!("mdes_obs_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("sweep.ckpt");
    let data = CheckpointData {
        fingerprint: 42,
        models: Vec::new(),
        quarantined: (0..4)
            .map(|i| mdes::core::QuarantinedPair {
                src: i,
                dst: i + 1,
                error: "injected".to_owned(),
                retries: 0,
            })
            .collect(),
    };
    write_checkpoint(&path, &data).expect("write");
    let bytes = std::fs::read(&path).expect("read bytes");
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");

    with_recorder(|r| {
        let back = read_checkpoint(&path).expect("recovering read");
        assert_eq!(back.fingerprint, 42);
        assert_eq!(back.quarantined.len(), 3, "one frame lost to truncation");
        assert_eq!(r.counter_value("checkpoint.frames_recovered"), 3);
        assert_eq!(r.counter_value("checkpoint.frames_dropped"), 1);
        assert_eq!(r.counter_value("checkpoint.recovery"), 1);
        assert_eq!(r.histogram("checkpoint.read").expect("read span").count, 1);
    });
    std::fs::remove_dir_all(&dir).ok();
}

mod roundtrip_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Serde-roundtripping a valid ScoreRange never yields bounds the
        /// constructors would reject, and invalid JSON-shaped input never
        /// deserializes.
        #[test]
        fn score_range_roundtrip_stays_valid(
            lo in -50.0f64..150.0,
            span in 0.0f64..100.0,
            inclusive in 0usize..2,
        ) {
            let range = if inclusive == 1 {
                ScoreRange::closed(lo, lo + span)
            } else {
                ScoreRange::half_open(lo, lo + span)
            };
            let json = serde_json::to_string(&range).unwrap();
            let back: ScoreRange = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, range);
            prop_assert!(back.lo() <= back.hi());
            prop_assert!(back.lo().is_finite() && back.hi().is_finite());
        }

        #[test]
        fn inverted_score_range_json_never_deserializes(
            lo in -100.0f64..100.0,
            gap in 1e-6f64..100.0,
            inclusive in 0usize..2,
        ) {
            let json = format!(
                "{{\"lo\": {}, \"hi\": {}, \"inclusive_hi\": {}}}",
                lo + gap,
                lo,
                inclusive == 1
            );
            prop_assert!(serde_json::from_str::<ScoreRange>(&json).is_err());
        }

        /// Valid window configs survive the roundtrip; any config with a
        /// zero field fails to deserialize instead of dividing by zero later.
        #[test]
        fn window_config_roundtrip_stays_valid(
            word_len in 0usize..6,
            word_stride in 0usize..6,
            sent_len in 0usize..6,
            sent_stride in 0usize..6,
        ) {
            let cfg = WindowConfig { word_len, word_stride, sent_len, sent_stride };
            let json = serde_json::to_string(&cfg).unwrap();
            let parsed = serde_json::from_str::<WindowConfig>(&json);
            match cfg.validate() {
                Ok(()) => {
                    let back = parsed.unwrap();
                    prop_assert_eq!(back, cfg);
                    prop_assert!(back.validate().is_ok());
                }
                Err(_) => prop_assert!(parsed.is_err()),
            }
        }

        /// Checkpoint files survive arbitrary truncation: the recovered
        /// prefix always re-validates and never exceeds what was written.
        #[test]
        fn checkpoint_truncation_always_recovers_a_valid_prefix(
            n_pairs in 0usize..5,
            cut_back in 0usize..200,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "mdes_obs_prop_{}_{n_pairs}_{cut_back}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("sweep.ckpt");
            let data = CheckpointData {
                fingerprint: 7,
                models: Vec::new(),
                quarantined: (0..n_pairs)
                    .map(|i| mdes::core::QuarantinedPair {
                        src: i,
                        dst: i + 1,
                        error: format!("e{i}"),
                        retries: i,
                    })
                    .collect(),
            };
            write_checkpoint(&path, &data).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let cut = bytes.len().saturating_sub(cut_back);
            std::fs::write(&path, &bytes[..cut]).unwrap();
            match read_checkpoint(&path) {
                Ok(back) => {
                    prop_assert_eq!(back.fingerprint, 7);
                    prop_assert!(back.quarantined.len() <= n_pairs);
                    prop_assert_eq!(
                        back.quarantined.as_slice(),
                        &data.quarantined[..back.quarantined.len()]
                    );
                }
                // Only a header shorter than 16 bytes may error.
                Err(_) => prop_assert!(cut < 16),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
