//! Integration tests for the serving split (DESIGN.md §11).
//!
//! Covers the acceptance criteria of the training/serving refactor:
//!
//! - a [`GraphSnapshot`] frozen from a fitted NMT model produces
//!   *bit-identical* detection scores to the tape-backed `TrainedGraph`
//!   path, streamed and batched, before and after a serde round-trip
//!   through the on-disk snapshot format;
//! - a snapshot published mid-stream yields byte-identical detections for
//!   windows completed before the swap, applies the new graph from the
//!   first window completed after, and never drops or reorders buffered
//!   windows — at 1, 2 and 4 engine worker threads;
//! - an incompatible snapshot is rejected without disturbing live serving.

use mdes::core::serve::{GraphSnapshot, ServingEngine, StreamSession};
use mdes::core::{
    detect, read_snapshot, write_snapshot, CoreError, Mdes, MdesConfig, OnlineDetection,
    TranslatorConfig,
};
use mdes::graph::ScoreRange;
use mdes::lang::{RawTrace, WindowConfig};
use mdes::nn::Seq2SeqConfig;

fn square(name: &str, n: usize, phase: usize) -> RawTrace {
    RawTrace::new(
        name,
        (0..n)
            .map(|t| {
                if ((t + phase) / 5).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect(),
    )
}

fn traces() -> Vec<RawTrace> {
    // 710 samples: the phase-slipped stream reads three samples ahead of
    // the 450..700 replay range.
    vec![
        square("a", 710, 0),
        square("b", 710, 2),
        square("c", 710, 4),
    ]
}

fn base_config() -> MdesConfig {
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
    cfg
}

fn fitted_ngram() -> (Mdes, Vec<RawTrace>) {
    let traces = traces();
    let m = Mdes::fit(&traces, 0..300, 300..450, base_config()).expect("fit");
    (m, traces)
}

fn fitted_nmt() -> (Mdes, Vec<RawTrace>) {
    let traces = traces();
    let mut cfg = base_config();
    cfg.build.translator = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 10,
        hidden: 10,
        train_steps: 15,
        ..Seq2SeqConfig::default()
    });
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit NMT");
    (m, traces)
}

/// A test stream with a phase slip on sensor `b` from sample 520 on, so
/// scores and alerts are non-trivial and discriminate between snapshots.
fn slipped_sample(traces: &[RawTrace], t: usize) -> Vec<Option<String>> {
    traces
        .iter()
        .enumerate()
        .map(|(k, tr)| {
            Some(if k == 1 && t >= 520 {
                tr.events[t + 3].clone()
            } else {
                tr.events[t].clone()
            })
        })
        .collect()
}

fn stream_engine(
    engine: &ServingEngine,
    session: &mut StreamSession,
    traces: &[RawTrace],
    range: std::ops::Range<usize>,
) -> Vec<OnlineDetection> {
    let mut out = Vec::new();
    for t in range {
        if let Some(d) = engine
            .push_opt(session, &slipped_sample(traces, t))
            .expect("push")
        {
            out.push(d);
        }
    }
    out
}

#[test]
fn frozen_nmt_detection_is_bit_identical_to_tape_path() {
    let (m, traces) = fitted_nmt();
    let snap = GraphSnapshot::freeze(&m);

    // Batch: frozen snapshot vs the tape-backed TrainedGraph, same inputs.
    let sets = m
        .language()
        .encode_segment(&traces, 450..700)
        .expect("encode");
    let tape = detect(m.trained(), &sets, &m.config().detection).expect("tape detect");
    let frozen = snap.detect_excluding(&sets, &[]).expect("frozen detect");
    assert_eq!(tape.scores.len(), frozen.scores.len());
    for (a, b) in tape.scores.iter().zip(&frozen.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "scores must be bit-identical");
    }
    assert_eq!(tape.alerts, frozen.alerts);
    assert_eq!(tape.valid_models, frozen.valid_models);

    // Streamed through the engine: same scores again, window by window.
    let engine = ServingEngine::new(snap);
    let mut session = engine.open_session(traces.len()).expect("session");
    let mut streamed = Vec::new();
    for t in 450..700 {
        let sample: Vec<Option<String>> =
            traces.iter().map(|tr| Some(tr.events[t].clone())).collect();
        if let Some(d) = engine.push_opt(&mut session, &sample).expect("push") {
            streamed.push(d.score);
        }
    }
    assert_eq!(streamed.len(), tape.scores.len());
    for (s, b) in streamed.iter().zip(&tape.scores) {
        assert_eq!(s.to_bits(), b.to_bits(), "streamed score must match batch");
    }
}

#[test]
fn snapshot_file_roundtrip_preserves_nmt_scores_exactly() {
    let (m, traces) = fitted_nmt();
    let snap = GraphSnapshot::freeze(&m);
    let dir = std::env::temp_dir().join(format!("mdes_serving_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("plant.snap");
    write_snapshot(&path, &snap).expect("write snapshot");
    let restored = read_snapshot(&path).expect("read snapshot");
    std::fs::remove_dir_all(&dir).ok();

    let sets = m
        .language()
        .encode_segment(&traces, 450..700)
        .expect("encode");
    let before = snap.detect_excluding(&sets, &[]).expect("detect before");
    let after = restored.detect_excluding(&sets, &[]).expect("detect after");
    assert_eq!(before.alerts, after.alerts);
    for (a, b) in before.scores.iter().zip(&after.scores) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "round-trip must not perturb scores"
        );
    }
}

/// Two compatible-but-different snapshots: A is trained on the original
/// phase relationship, B on the *slipped* one (sensor `b` three samples
/// ahead — exactly what [`slipped_sample`] streams from t = 520 on). Post-
/// slip windows therefore break A's pairs but look healthy to B, so the
/// two artifacts are guaranteed to disagree on the replayed stream.
fn snapshot_pair() -> (GraphSnapshot, GraphSnapshot, Vec<RawTrace>) {
    let (m_a, traces) = fitted_ngram();
    let traces_b = vec![
        square("a", 710, 0),
        square("b", 710, 5),
        square("c", 710, 4),
    ];
    let m_b = Mdes::fit(&traces_b, 0..300, 300..450, base_config()).expect("fit B");
    (
        GraphSnapshot::freeze(&m_a),
        GraphSnapshot::freeze(&m_b),
        traces,
    )
}

#[test]
fn hot_swap_applies_from_next_window_without_dropping_any() {
    let (snap_a, snap_b, traces) = snapshot_pair();

    // Reference runs: all-A and all-B over the identical stream.
    let engine_a = ServingEngine::new(snap_a.clone());
    let mut s = engine_a.open_session(3).expect("session");
    let all_a = stream_engine(&engine_a, &mut s, &traces, 450..700);
    let engine_b = ServingEngine::new(snap_b.clone());
    let mut s = engine_b.open_session(3).expect("session");
    let all_b = stream_engine(&engine_b, &mut s, &traces, 450..700);
    assert_eq!(all_a.len(), all_b.len(), "same stream, same emission grid");
    assert_ne!(all_a, all_b, "fixture snapshots must be distinguishable");

    // Swap mid-stream, deliberately between emissions (mid-buffered-window).
    let swap_at = 553;
    let engine = ServingEngine::new(snap_a);
    let mut session = engine.open_session(3).expect("session");
    let mut swapped = Vec::new();
    for t in 450..700 {
        if t == swap_at {
            engine.publish(snap_b.clone()).expect("publish");
        }
        if let Some(d) = engine
            .push_opt(&mut session, &slipped_sample(&traces, t))
            .expect("push")
        {
            swapped.push(d);
        }
    }

    // No window dropped or reordered: the emission grid is unchanged.
    assert_eq!(swapped.len(), all_a.len());
    let indices: Vec<usize> = swapped.iter().map(|d| d.sample_index).collect();
    let expected: Vec<usize> = all_a.iter().map(|d| d.sample_index).collect();
    assert_eq!(indices, expected);

    // Windows completed before the publish are byte-identical to the A run;
    // every window completed after scores against B.
    for (i, d) in swapped.iter().enumerate() {
        if d.sample_index < swap_at - 450 {
            assert_eq!(d, &all_a[i], "pre-swap window {i} must match A");
        } else {
            assert_eq!(d, &all_b[i], "post-swap window {i} must match B");
        }
    }
}

#[test]
fn hot_swap_is_deterministic_across_worker_thread_counts() {
    let (snap_a, snap_b, traces) = snapshot_pair();
    let swap_at = 553;
    let streams = 3;

    let run = |threads: usize| -> Vec<Vec<OnlineDetection>> {
        let engine = ServingEngine::new(snap_a.clone()).with_threads(threads);
        let mut sessions: Vec<StreamSession> = (0..streams)
            .map(|_| engine.open_session(3).expect("session"))
            .collect();
        let mut per_stream: Vec<Vec<OnlineDetection>> = vec![Vec::new(); streams];
        for t in 450..700 {
            if t == swap_at {
                engine.publish(snap_b.clone()).expect("publish");
            }
            let sample = slipped_sample(&traces, t);
            let results = engine.push_opt_many(&mut sessions, &vec![sample; streams]);
            for (k, r) in results.into_iter().enumerate() {
                if let Some(d) = r.expect("push") {
                    per_stream[k].push(d);
                }
            }
        }
        per_stream
    };

    let reference = run(1);
    assert!(
        !reference[0].is_empty(),
        "the stream must emit detections for the comparison to mean anything"
    );
    // All sessions see the same stream, so they must agree exactly.
    for s in &reference {
        assert_eq!(s, &reference[0]);
    }
    for threads in [2usize, 4] {
        assert_eq!(
            run(threads),
            reference,
            "results must be byte-identical at {threads} worker threads"
        );
    }
}

#[test]
fn rejected_publish_leaves_live_serving_untouched() {
    let (m, traces) = fitted_ngram();
    let snap = GraphSnapshot::freeze(&m);
    let engine = ServingEngine::new(snap.clone());
    let mut session = engine.open_session(3).expect("session");
    let before = stream_engine(&engine, &mut session, &traces, 450..570);

    // An artifact with different windowing must be refused...
    let mut cfg = base_config();
    cfg.window.sent_len = 6;
    let other = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit other");
    let err = engine.publish(GraphSnapshot::freeze(&other));
    assert!(matches!(err, Err(CoreError::IncompatibleSnapshot { .. })));
    assert_eq!(engine.store().version(), 1, "version must not advance");

    // ...and the live session must keep producing the original results.
    let engine_ref = ServingEngine::new(snap);
    let mut fresh = engine_ref.open_session(3).expect("session");
    let reference = stream_engine(&engine_ref, &mut fresh, &traces, 450..700);
    let after = stream_engine(&engine, &mut session, &traces, 570..700);
    let combined: Vec<OnlineDetection> = before.into_iter().chain(after).collect();
    assert_eq!(combined, reference);
}
