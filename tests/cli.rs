//! Integration test of the `mdes` command-line interface: simulate -> fit
//! -> detect -> discover -> diagnose, exercising the JSON persistence path.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mdes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdes"))
        .args(args)
        .output()
        .expect("run mdes binary")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&p).expect("tmp dir");
    p.push(name);
    p.to_string_lossy().into_owned()
}

#[test]
fn full_cli_workflow() {
    let traces = tmp("cli_traces.json");
    let model = tmp("cli_model.json");
    let dot = tmp("cli_graph.dot");

    // simulate-plant: 10 sensors x 10 days x 288 samples.
    let out = mdes(&[
        "simulate-plant",
        "--out",
        &traces,
        "--sensors",
        "10",
        "--days",
        "10",
        "--minutes",
        "288",
    ]);
    assert!(
        out.status.success(),
        "simulate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::metadata(&traces).expect("traces file").len() > 1000);

    // fit on days 1-4, dev 5-6; use a wide validity range so detection on
    // the miniature plant has models to consult.
    let out = mdes(&[
        "fit",
        "--traces",
        &traces,
        "--train",
        "0..1152",
        "--dev",
        "1152..1728",
        "--out",
        &model,
        "--word-len",
        "5",
        "--sent-len",
        "6",
        "--valid",
        "40..100",
    ]);
    assert!(
        out.status.success(),
        "fit: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("directional models"),
        "fit output: {stdout}"
    );

    // detect over days 7-10.
    let out = mdes(&[
        "detect",
        "--model",
        &model,
        "--traces",
        &traces,
        "--range",
        "1728..2880",
    ]);
    assert!(
        out.status.success(),
        "detect: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("a_t"), "detect output: {stdout}");
    assert!(stdout.contains("valid models"));

    // discover structure and export DOT.
    let out = mdes(&[
        "discover", "--model", &model, "--range", "40..100", "--dot", &dot,
    ]);
    assert!(
        out.status.success(),
        "discover: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot_content = std::fs::read_to_string(&dot).expect("dot file");
    assert!(dot_content.starts_with("digraph"));

    // diagnose the worst window.
    let out = mdes(&[
        "diagnose",
        "--model",
        &model,
        "--traces",
        &traces,
        "--range",
        "1728..2880",
    ]);
    assert!(
        out.status.success(),
        "diagnose: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("broken pairs"), "diagnose output: {stdout}");
}

#[test]
fn cli_reports_clean_errors() {
    let out = mdes(&[
        "fit",
        "--traces",
        "/nonexistent.json",
        "--train",
        "0..10",
        "--dev",
        "10..20",
        "--out",
        "/tmp/x.json",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read traces file"), "stderr: {err}");

    let out = mdes(&["unknown-command"]);
    assert!(!out.status.success());

    let out = mdes(&[
        "detect",
        "--model",
        "/nonexistent.json",
        "--traces",
        "/also-nope.json",
        "--range",
        "0..10",
    ]);
    assert!(!out.status.success());
}

#[test]
fn cli_help_succeeds() {
    let out = mdes(&["help"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"));
}
